// check_docs: deterministic cross-reference linter for the prose docs.
//
// Documentation rots by reference: a file gets renamed, an env var gets
// dropped, a metric changes its name, and the prose that cites it keeps
// compiling because prose always compiles. This tool makes the citations
// themselves CI-checked. It scans the maintained documents (README.md,
// DESIGN.md, EXPERIMENTS.md, ROADMAP.md and everything under docs/) and
// verifies four classes of backtick-quoted reference against the tree:
//
//   paths     `src/control/service.hpp`, `tests/test_obs.cpp`, bare
//             header names like `flight.hpp` — must name a file that
//             exists (repo-relative, src/-relative, or by unique path
//             suffix). Generated artifacts (telemetry_*.json,
//             BENCH_observe.json, flight_*.json, build/ paths) are
//             exempt: they exist only after a run.
//   env vars  `PRESS_*` — must appear in a source file (src/, tools/,
//             bench/, tests/, .github/), so a documented knob is one the
//             code actually reads.
//   metrics   dotted names rooted at core./control./service./obs. —
//             the literal (after stripping a trailing `.*` wildcard)
//             must appear in a source string; dynamic segments like
//             `control.batch.worker.0.busy_s` fall back to the longest
//             literal dot-prefix.
//   binaries  `./build/<dir>/<name>` invocations — <name> must be an
//             add_executable() target in some CMakeLists.txt.
//
// Exit 0 when every reference resolves; exit 1 listing each dangling
// reference otherwise. `--self-test` plants one known-dangling reference
// of every class plus matching known-good ones and exits 0 only if the
// checker flags exactly the planted defects — the linter lints itself.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Reference {
    std::string doc;    ///< document the token was found in
    std::size_t line;   ///< 1-based line number
    std::string token;  ///< the quoted text
    std::string kind;   ///< path | env | metric | binary
};

/// Everything the checks resolve against, loaded once from the tree.
struct Tree {
    std::set<std::string> files;        ///< repo-relative paths, '/' seps
    std::string source_blob;            ///< concatenated source text
    std::set<std::string> cmake_targets;
};

bool skip_dir(const std::string& name) {
    return name == ".git" || name == ".claude" ||
           name.rfind("build", 0) == 0 || name == "related";
}

bool source_like(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
           ext == ".yml" || ext == ".yaml" || ext == ".cmake" ||
           p.filename() == "CMakeLists.txt";
}

Tree load_tree(const fs::path& root) {
    Tree tree;
    std::vector<fs::path> stack{root};
    while (!stack.empty()) {
        const fs::path dir = stack.back();
        stack.pop_back();
        for (const auto& entry : fs::directory_iterator(dir)) {
            const std::string name = entry.path().filename().string();
            if (entry.is_directory()) {
                if (!skip_dir(name)) stack.push_back(entry.path());
                continue;
            }
            if (!entry.is_regular_file()) continue;
            std::string rel =
                fs::relative(entry.path(), root).generic_string();
            tree.files.insert(rel);
            // The linter's own source never certifies a reference: it
            // contains the self-test's planted defects as literals.
            if (rel == "tools/check_docs.cpp") continue;
            if (source_like(entry.path())) {
                std::ifstream in(entry.path());
                std::stringstream ss;
                ss << in.rdbuf();
                tree.source_blob += ss.str();
                tree.source_blob += '\n';
            }
        }
    }
    // add_executable(<target> ...) across every CMakeLists.txt, plus the
    // repo's one-liner wrappers (press_example(x) etc.) that expand to
    // add_executable(${name} ${name}.cpp).
    static const std::regex target_re(
        R"((?:add_executable|press_example|press_bench|press_test)\(\s*([A-Za-z0-9_]+))");
    for (auto it = std::sregex_iterator(tree.source_blob.begin(),
                                        tree.source_blob.end(), target_re);
         it != std::sregex_iterator(); ++it)
        tree.cmake_targets.insert((*it)[1].str());
    tree.cmake_targets.erase("name");  // the wrapper definitions themselves
    return tree;
}

/// Generated-at-runtime artifacts the docs legitimately name.
bool generated_artifact(const std::string& token) {
    const std::string base =
        fs::path(token).filename().generic_string();
    return token.rfind("build/", 0) == 0 ||
           token.find("/build/") != std::string::npos ||
           base.rfind("telemetry_", 0) == 0 ||
           base.rfind("trace_", 0) == 0 ||
           base.rfind("flight_", 0) == 0 ||
           base.rfind("baseline", 0) == 0 ||
           base.rfind("BENCH_", 0) == 0;
}

bool path_resolves(const Tree& tree, const std::string& token) {
    if (generated_artifact(token)) return true;
    if (tree.files.count(token) != 0) return true;
    if (tree.files.count("src/" + token) != 0) return true;
    // Suffix match: `control/service.hpp` or a bare `flight.hpp` names a
    // file anywhere in the tree.
    const std::string suffix = "/" + token;
    for (const std::string& f : tree.files) {
        if (f.size() >= suffix.size() &&
            f.compare(f.size() - suffix.size(), suffix.size(), suffix) == 0)
            return true;
    }
    return false;
}

bool env_resolves(const Tree& tree, const std::string& token) {
    return tree.source_blob.find(token) != std::string::npos;
}

/// Metric roots the telemetry registry actually uses; a dotted token
/// outside these roots is prose (e.g. `foo.bar` in an example), not a
/// metric citation.
bool metric_root(const std::string& token) {
    static const char* roots[] = {"core.",    "control.", "service.",
                                  "obs.",     "em.",      "sdr.",
                                  "phy.",     "fault.",   "press."};
    for (const char* r : roots)
        if (token.rfind(r, 0) == 0) return true;
    return false;
}

bool metric_resolves(const Tree& tree, std::string token) {
    // Strip a trailing wildcard segment: `control.multilink.*`.
    if (token.size() >= 2 && token.compare(token.size() - 2, 2, ".*") == 0)
        token.resize(token.size() - 2);
    while (true) {
        if (tree.source_blob.find(token) != std::string::npos) return true;
        // Dynamic tail segments (worker indices, link ids): retry on the
        // longest literal dot-prefix, but never shallower than two
        // segments — `control.` alone proves nothing.
        const std::size_t dot = token.find_last_of('.');
        if (dot == std::string::npos || token.find('.') == dot)
            return false;
        token.resize(dot);
    }
}

bool binary_resolves(const Tree& tree, const std::string& token) {
    const std::string name = fs::path(token).filename().string();
    return tree.cmake_targets.count(name) != 0;
}

/// Pulls every checkable reference out of one document's text.
std::vector<Reference> extract(const std::string& doc,
                               const std::string& text) {
    std::vector<Reference> refs;
    static const std::regex quoted_re("`([^`\\n]+)`");
    static const std::regex path_re(
        R"(^[A-Za-z0-9_./-]+\.(md|cpp|hpp|h|json|yml|txt|cmake)$)");
    static const std::regex env_re(R"(PRESS_[A-Z][A-Z0-9_]*)");
    static const std::regex metric_re(
        R"(^[a-z]+(\.[a-z0-9_]+)+(\.\*)?$)");
    static const std::regex binary_re(R"(\./build/[A-Za-z0-9_/]+)");

    std::size_t line = 1;
    std::istringstream stream(text);
    std::string buf;
    while (std::getline(stream, buf)) {
        for (auto it = std::sregex_iterator(buf.begin(), buf.end(),
                                            quoted_re);
             it != std::sregex_iterator(); ++it) {
            const std::string token = (*it)[1].str();
            if (std::regex_match(token, path_re) &&
                token.find('.') != 0) {
                refs.push_back({doc, line, token, "path"});
            } else if (std::regex_match(token, metric_re) &&
                       metric_root(token)) {
                refs.push_back({doc, line, token, "metric"});
            }
        }
        // Env vars and binary invocations appear both inside and outside
        // backticks (shell blocks), so they scan the raw line.
        for (auto it =
                 std::sregex_iterator(buf.begin(), buf.end(), env_re);
             it != std::sregex_iterator(); ++it)
            refs.push_back({doc, line, it->str(), "env"});
        for (auto it =
                 std::sregex_iterator(buf.begin(), buf.end(), binary_re);
             it != std::sregex_iterator(); ++it)
            refs.push_back({doc, line, it->str(), "binary"});
        ++line;
    }
    return refs;
}

std::vector<Reference> dangling(const Tree& tree,
                                const std::vector<Reference>& refs) {
    std::vector<Reference> bad;
    for (const Reference& r : refs) {
        bool ok = true;
        if (r.kind == "path") ok = path_resolves(tree, r.token);
        else if (r.kind == "env") ok = env_resolves(tree, r.token);
        else if (r.kind == "metric") ok = metric_resolves(tree, r.token);
        else if (r.kind == "binary") ok = binary_resolves(tree, r.token);
        if (!ok) bad.push_back(r);
    }
    return bad;
}

std::vector<std::string> doc_set(const fs::path& root) {
    std::vector<std::string> docs = {"README.md", "DESIGN.md",
                                     "EXPERIMENTS.md", "ROADMAP.md"};
    if (fs::exists(root / "docs"))
        for (const auto& entry : fs::directory_iterator(root / "docs"))
            if (entry.path().extension() == ".md")
                docs.push_back(
                    fs::relative(entry.path(), root).generic_string());
    std::sort(docs.begin(), docs.end());
    return docs;
}

/// The linter lints itself: plant one dangling and one resolving
/// reference of every class, and require exactly the planted defects to
/// be flagged.
int self_test(const Tree& tree) {
    const std::string synthetic =
        "Good: `src/core/system.hpp` and `control/objective.hpp` and\n"
        "`flight.hpp`; knob PRESS_THREADS; metric `core.link_cache.hits`\n"
        "and dynamic `control.batch.worker.0.busy_s` and wildcard\n"
        "`control.multilink.*`; run ./build/tools/bench_diff; generated\n"
        "`BENCH_observe.json` and `build/bench/telemetry_perf_snapshot.json`.\n"
        "Bad: `src/core/warp_drive.hpp`; knob PRESS_FLUX_CAPACITOR;\n"
        "metric `control.warp.engaged`; run ./build/tools/warp_console.\n";
    const std::vector<Reference> refs = extract("<self-test>", synthetic);
    const std::vector<Reference> bad = dangling(tree, refs);
    const std::set<std::string> expected = {
        "src/core/warp_drive.hpp", "PRESS_FLUX_CAPACITOR",
        "control.warp.engaged", "./build/tools/warp_console"};
    std::set<std::string> flagged;
    for (const Reference& r : bad) flagged.insert(r.token);
    if (flagged == expected) {
        std::printf("check_docs --self-test: ok (%zu planted defects "
                    "flagged, %zu good references resolved)\n",
                    expected.size(), refs.size() - bad.size());
        return 0;
    }
    for (const std::string& t : expected)
        if (flagged.count(t) == 0)
            std::fprintf(stderr,
                         "self-test FAIL: planted dangling reference "
                         "not flagged: %s\n",
                         t.c_str());
    for (const std::string& t : flagged)
        if (expected.count(t) == 0)
            std::fprintf(stderr,
                         "self-test FAIL: good reference wrongly "
                         "flagged: %s\n",
                         t.c_str());
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = ".";
    bool run_self_test = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--self-test") == 0)
            run_self_test = true;
        else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc)
            root = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: check_docs [--root <repo>] [--self-test]\n");
            return 2;
        }
    }
    if (!fs::exists(root / "README.md")) {
        std::fprintf(stderr,
                     "check_docs: %s does not look like the repo root "
                     "(no README.md); pass --root\n",
                     root.string().c_str());
        return 2;
    }

    const Tree tree = load_tree(root);
    if (run_self_test) return self_test(tree);

    std::size_t checked = 0;
    std::vector<Reference> bad;
    for (const std::string& doc : doc_set(root)) {
        std::ifstream in(root / doc);
        if (!in) {
            std::fprintf(stderr, "check_docs: cannot read %s\n",
                         doc.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        const std::vector<Reference> refs = extract(doc, ss.str());
        checked += refs.size();
        const std::vector<Reference> doc_bad = dangling(tree, refs);
        bad.insert(bad.end(), doc_bad.begin(), doc_bad.end());
    }
    if (!bad.empty()) {
        for (const Reference& r : bad)
            std::fprintf(stderr,
                         "check_docs: %s:%zu: dangling %s reference "
                         "`%s`\n",
                         r.doc.c_str(), r.line, r.kind.c_str(),
                         r.token.c_str());
        std::fprintf(stderr, "check_docs: %zu dangling reference(s)\n",
                     bad.size());
        return 1;
    }
    std::printf("check_docs: ok (%zu references across %zu documents)\n",
                checked, doc_set(root).size());
    return 0;
}
