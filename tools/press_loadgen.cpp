// press_loadgen — closed-loop driver and chaos soak for the control-plane
// service.
//
// Two modes:
//
//   In-process (default): builds a study scene, a control::Service over
//   it, and N client state machines, each talking to the service through
//   a pair of fault::ChaosLink pipes (client->service and back). Virtual
//   time advances in fixed ticks; chaos drops, duplicates, reorders,
//   corrupts, delays and severs frames at configured rates while clients
//   retransmit, reconnect and occasionally refuse to read (slow-reader
//   sessions). This is the chaos-soak harness CI runs under ASan/TSan.
//
//   Socket (--connect PATH): drives a running pressd over AF_UNIX
//   SOCK_SEQPACKET with a plain closed loop — the end-to-end smoke and
//   throughput check for the daemon.
//
// The exit code is the verdict. The soak fails (exit 1) if:
//   - the service's no-silent-drop ledger does not balance
//     (admitted != served + expired + evicted + dropped_closed + queued),
//   - --assert-rps R is given and served wall-clock throughput is lower,
//   - --inject-stuck N is given and the watchdog never tripped or never
//     wrote a flight dump.
//
// --subscribe attaches one extra in-process session that streams
// telemetry (Subscribe/TelemetryFrame) for the whole run, validates
// every received frame against press.timeseries/v1, and reports an
// "introspection" block in the summary — the live-subscriber soak the
// bench compares against an unsubscribed run. --capture-telemetry PATH
// writes the received stream for validate_telemetry.
//
//   press_loadgen [--sessions N] [--requests N] [--chaos L]
//                 [--slow-readers K] [--inject-stuck N] [--seed S]
//                 [--assert-rps R] [--budget-us N] [--deadline-us N]
//                 [--queue N] [--subscribe] [--telemetry-interval-s S]
//                 [--capture-telemetry PATH] [--quiet] [--connect PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "control/message.hpp"
#include "control/service.hpp"
#include "core/scenarios.hpp"
#include "core/serve.hpp"
#include "fault/chaos.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/rng.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

using press::control::Message;
using press::control::MutateRequest;
using press::control::OptimizeReply;
using press::control::OptimizeRequest;
using press::control::Reject;
using press::control::RejectReason;
using press::control::Service;
using press::fault::ChaosLink;
using press::fault::ChaosOptions;

struct Args {
    std::size_t sessions = 4;
    std::uint64_t requests = 200;  // per session
    double chaos = 0.0;
    std::size_t slow_readers = 0;
    std::size_t inject_stuck = 0;
    std::uint64_t seed = 1;
    double assert_rps = 0.0;
    std::uint32_t budget_us = 5000;
    std::uint32_t deadline_us = 0;  // 0 = service default
    std::size_t queue = 64;
    bool quiet = false;
    std::string connect_path;
    bool subscribe = false;
    double telemetry_interval_s = 0.1;  ///< sampler + push cadence
    std::string capture_telemetry_path;
};

bool parse_args(int argc, char** argv, Args& args) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "press_loadgen: %s needs a value\n",
                             a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        const char* v = nullptr;
        if (a == "--sessions" && (v = next()))
            args.sessions = std::strtoull(v, nullptr, 10);
        else if (a == "--requests" && (v = next()))
            args.requests = std::strtoull(v, nullptr, 10);
        else if (a == "--chaos" && (v = next()))
            args.chaos = std::strtod(v, nullptr);
        else if (a == "--slow-readers" && (v = next()))
            args.slow_readers = std::strtoull(v, nullptr, 10);
        else if (a == "--inject-stuck" && (v = next()))
            args.inject_stuck = std::strtoull(v, nullptr, 10);
        else if (a == "--seed" && (v = next()))
            args.seed = std::strtoull(v, nullptr, 10);
        else if (a == "--assert-rps" && (v = next()))
            args.assert_rps = std::strtod(v, nullptr);
        else if (a == "--budget-us" && (v = next()))
            args.budget_us =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (a == "--deadline-us" && (v = next()))
            args.deadline_us =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (a == "--queue" && (v = next()))
            args.queue = std::strtoull(v, nullptr, 10);
        else if (a == "--connect" && (v = next()))
            args.connect_path = v;
        else if (a == "--telemetry-interval-s" && (v = next()))
            args.telemetry_interval_s = std::strtod(v, nullptr);
        else if (a == "--capture-telemetry" && (v = next()))
            args.capture_telemetry_path = v;
        else if (a == "--subscribe")
            args.subscribe = true;
        else if (a == "--quiet")
            args.quiet = true;
        else if (v == nullptr && a != "--quiet" && a != "--subscribe") {
            std::fprintf(stderr, "press_loadgen: unknown flag %s\n",
                         a.c_str());
            return false;
        } else {
            return false;
        }
    }
    return true;
}

/// One client state machine: closed loop (at most one outstanding
/// optimize), bounded retransmission, reconnect on a severed link.
struct Client {
    Service::SessionId session = 0;
    ChaosLink to_service;
    ChaosLink from_service;
    press::util::Rng rng;
    bool slow = false;

    std::uint32_t next_seq = 1;
    bool outstanding = false;
    std::uint32_t outstanding_seq = 0;
    std::vector<std::uint8_t> outstanding_frame;
    double retransmit_at_s = 0.0;
    int retransmits_left = 0;

    // Client-side ledger (informational; chaos legitimately loses frames
    // — the hard invariant lives in the service's accounting).
    std::uint64_t sent = 0;
    std::uint64_t mutates_sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t bad_frames = 0;
    std::uint64_t reconnects = 0;

    Client(ChaosOptions chaos, press::util::Rng chaos_rng,
           press::util::Rng client_rng)
        : to_service(chaos, chaos_rng.fork()),
          from_service(chaos, chaos_rng.fork()),
          rng(client_rng) {}
};

constexpr double kTickS = 0.5e-3;
constexpr double kRetransmitTimeoutS = 0.05;
constexpr int kMaxRetransmits = 4;

int run_in_process(const Args& args) {
    press::obs::set_enabled(true);
    press::obs::flight_install_signal_dump("press_loadgen");

    auto scenario = press::core::make_link_scenario(args.seed,
                                                   /*line_of_sight=*/false);
    press::core::ServeConfig serve_config;
    serve_config.seed = args.seed * 0x9E3779B97F4A7C15ull + 1;
    press::control::ServiceOptions options;
    options.queue_capacity = args.queue;
    options.inject_stall_every = args.inject_stuck;
    options.telemetry.interval_s = args.telemetry_interval_s;
    Service service(
        press::core::make_service_engine(scenario.system, serve_config),
        options);

    // Live subscriber: one extra session streaming telemetry for the
    // whole run, drained every tick like a fast reader (its cost is the
    // thing the bench's introspection block measures).
    Service::SessionId sub_session = 0;
    std::uint64_t sub_frames = 0, sub_taps = 0, sub_exemplars = 0,
                  sub_invalid = 0;
    press::obs::Json::Array captured;
    if (args.subscribe) {
        sub_session = service.connect();
        press::control::Hello hello;
        service.submit(sub_session, encode(Message{hello}, 1, {}));
        press::control::Subscribe sub;
        sub.interval_us = static_cast<std::uint32_t>(
            std::max(1.0, args.telemetry_interval_s * 1e6));
        service.submit(sub_session, encode(Message{sub}, 2, {}));
    }
    auto drain_subscriber = [&]() {
        if (!args.subscribe || !service.session_open(sub_session)) return;
        for (auto& frame : service.take_outgoing(sub_session)) {
            press::control::Decoded decoded;
            try {
                decoded = press::control::decode(frame);
            } catch (const press::control::ProtocolError&) {
                ++sub_invalid;
                continue;
            }
            if (const auto* telemetry =
                    std::get_if<press::control::TelemetryFrame>(
                        &decoded.message)) {
                ++sub_frames;
                try {
                    press::obs::Json doc =
                        press::obs::Json::parse(telemetry->payload);
                    if (!press::obs::validate_timeseries(doc).empty()) {
                        ++sub_invalid;
                        continue;
                    }
                    if (doc.contains("exemplars"))
                        sub_exemplars +=
                            doc.at("exemplars").as_array().size();
                    if (!args.capture_telemetry_path.empty())
                        captured.push_back(std::move(doc));
                } catch (const std::exception&) {
                    ++sub_invalid;
                }
            } else if (std::get_if<press::control::FlightTap>(
                           &decoded.message) != nullptr) {
                ++sub_taps;
            }
        }
    };

    const ChaosOptions chaos = ChaosOptions::uniform(args.chaos);
    press::util::Rng root_rng(args.seed * 77777 + 13);
    std::vector<Client> clients;
    clients.reserve(args.sessions);
    for (std::size_t i = 0; i < args.sessions; ++i) {
        clients.emplace_back(chaos, root_rng.fork(), root_rng.fork());
        clients.back().session = service.connect();
        clients.back().slow = i < args.slow_readers;
    }

    auto make_optimize = [&](Client& c) {
        OptimizeRequest req;
        req.array_id = static_cast<std::uint16_t>(scenario.array_id);
        req.link_id = static_cast<std::uint16_t>(scenario.link_id);
        req.objective = static_cast<std::uint8_t>(
            c.rng.chance(0.5) ? press::control::ServiceObjective::kMinSnr
                              : press::control::ServiceObjective::kMeanSnr);
        req.searcher = static_cast<std::uint8_t>(
            press::control::ServiceSearcher::kGreedy);
        req.budget_us = args.budget_us;
        req.deadline_us = args.deadline_us;
        req.priority = static_cast<std::uint8_t>(c.rng.uniform_int(0, 255));
        return req;
    };

    double vnow = 0.0;
    std::uint64_t tick = 0;
    const std::uint64_t target_total = args.requests * args.sessions;
    // Generous bound: chaos retries stretch runs, but the soak must end.
    const std::uint64_t max_ticks = 4000 * std::max<std::uint64_t>(
                                               1, target_total / 10);
    bool draining = false;
    std::uint64_t drain_ticks = 0;

    const auto wall_start = std::chrono::steady_clock::now();

    while (tick < max_ticks) {
        ++tick;
        vnow += kTickS;
        service.advance_clock(kTickS);

        bool all_done = true;
        for (auto& c : clients) {
            // A session the service closed (slow reader) or a severed
            // link both mean "reconnect and carry on".
            const bool severed =
                c.to_service.severed() || c.from_service.severed();
            if (severed || !service.session_open(c.session)) {
                if (service.session_open(c.session))
                    service.disconnect(c.session);
                c.to_service.reconnect();
                c.from_service.reconnect();
                c.session = service.connect();
                ++c.reconnects;
                if (c.outstanding) {
                    ++c.abandoned;
                    c.outstanding = false;
                }
                press::control::Hello hello;
                c.to_service.send(
                    encode(Message{hello}, c.next_seq++, {}), vnow);
            }

            // Read replies (the slow reader's tardiness is modeled at the
            // service outbox below, so reading here is always allowed).
            for (auto& frame : c.from_service.deliver(vnow)) {
                press::control::Decoded decoded;
                try {
                    decoded = press::control::decode(frame);
                } catch (const press::control::ProtocolError&) {
                    ++c.bad_frames;  // chaos corrupted it; wire counted it
                    continue;
                }
                const bool for_outstanding =
                    c.outstanding && decoded.seq == c.outstanding_seq;
                if (const auto* reply =
                        std::get_if<OptimizeReply>(&decoded.message)) {
                    if (for_outstanding) {
                        ++c.completed;
                        if (reply->status != 0) ++c.degraded;
                        c.outstanding = false;
                    }
                } else if (const auto* rej =
                               std::get_if<Reject>(&decoded.message)) {
                    const auto reason =
                        static_cast<RejectReason>(rej->reason);
                    if (reason == RejectReason::kExpired) {
                        ++c.expired;
                        if (for_outstanding) c.outstanding = false;
                    } else if (reason == RejectReason::kDuplicate) {
                        // The original got through; its reply is coming
                        // (or was lost — the retransmit budget bounds
                        // the wait either way).
                        if (for_outstanding)
                            c.retransmit_at_s = vnow + kRetransmitTimeoutS;
                    } else {
                        ++c.rejected;
                        if (for_outstanding) c.outstanding = false;
                    }
                }
                // HelloAck / MutateReply / StatusReply: informational.
            }

            // Retransmit or abandon a stuck request.
            if (c.outstanding && vnow >= c.retransmit_at_s) {
                if (c.retransmits_left > 0) {
                    --c.retransmits_left;
                    c.to_service.send(c.outstanding_frame, vnow);
                    c.retransmit_at_s = vnow + kRetransmitTimeoutS;
                } else {
                    ++c.abandoned;
                    c.outstanding = false;
                }
            }

            // Next request (closed loop).
            if (!draining && !c.outstanding && c.sent < args.requests) {
                ++c.sent;
                if (c.sent % 8 == 0) {
                    // A scene mutation rides along every 8th request:
                    // fire-and-forget, fenced to the next epoch.
                    MutateRequest mut;
                    mut.array_id =
                        static_cast<std::uint16_t>(scenario.array_id);
                    mut.element = static_cast<std::uint16_t>(
                        c.rng.uniform_int(0, 2));
                    mut.state =
                        static_cast<std::uint8_t>(c.rng.uniform_int(0, 3));
                    ++c.mutates_sent;
                    c.to_service.send(
                        encode(Message{mut}, c.next_seq++, {}), vnow);
                } else {
                    const OptimizeRequest req = make_optimize(c);
                    c.outstanding_seq = c.next_seq++;
                    c.outstanding_frame =
                        encode(Message{req}, c.outstanding_seq, {});
                    c.outstanding = true;
                    c.retransmit_at_s = vnow + kRetransmitTimeoutS;
                    c.retransmits_left = kMaxRetransmits;
                    c.to_service.send(c.outstanding_frame, vnow);
                }
            }
            if (c.sent < args.requests || c.outstanding) all_done = false;

            // Client -> service delivery.
            if (service.session_open(c.session)) {
                for (auto& frame : c.to_service.deliver(vnow))
                    service.submit(c.session, frame);
            } else {
                // Session closed between sends: frames fall on the floor
                // of a dead socket; the service never admitted them.
                (void)c.to_service.deliver(vnow);
            }
        }

        service.run_cycle();

        // Service -> client flush. A slow reader drains its service
        // outbox two orders of magnitude less often, which is what backs
        // the outbox up and triggers backpressure / session drop.
        for (auto& c : clients) {
            if (c.slow && tick % 128 != 0) continue;
            if (!service.session_open(c.session)) continue;
            for (auto& frame : service.take_outgoing(c.session))
                c.from_service.send(frame, vnow);
        }
        drain_subscriber();

        if (all_done) {
            draining = true;
            ++drain_ticks;
            // Everything sent and in-flight has settled; give the links
            // time to flush their delay queues, then stop.
            bool links_empty = true;
            for (const auto& c : clients) {
                if (c.to_service.in_flight() > 0 ||
                    c.from_service.in_flight() > 0)
                    links_empty = false;
            }
            if (links_empty && service.queue_depth() == 0 &&
                service.pending_mutations() == 0 && drain_ticks > 64)
                break;
        }
    }
    service.run_until_idle();
    drain_subscriber();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    // ---- Verdict ---------------------------------------------------
    const auto& s = service.stats();
    std::uint64_t chaos_sent = 0, chaos_dropped = 0, chaos_corrupted = 0,
                  chaos_dup = 0, chaos_reordered = 0, chaos_severed = 0;
    std::uint64_t completed = 0, abandoned = 0, reconnects = 0;
    for (const auto& c : clients) {
        for (const ChaosLink* link : {&c.to_service, &c.from_service}) {
            chaos_sent += link->stats().sent;
            chaos_dropped += link->stats().dropped;
            chaos_corrupted += link->stats().corrupted;
            chaos_dup += link->stats().duplicated;
            chaos_reordered += link->stats().reordered;
            chaos_severed += link->stats().severed_loss;
        }
        completed += c.completed;
        abandoned += c.abandoned;
        reconnects += c.reconnects;
    }

    bool ok = true;
    if (!service.accounting_balanced()) {
        std::fprintf(stderr,
                     "press_loadgen: FAIL accounting imbalance: admitted=%llu"
                     " != served=%llu + expired=%llu + evicted=%llu +"
                     " dropped_closed=%llu + queued=%zu\n",
                     static_cast<unsigned long long>(s.admitted),
                     static_cast<unsigned long long>(s.served),
                     static_cast<unsigned long long>(s.expired),
                     static_cast<unsigned long long>(s.evicted),
                     static_cast<unsigned long long>(s.dropped_closed),
                     service.queue_depth());
        ok = false;
    }
    const double rps = wall_s > 0.0 ? static_cast<double>(s.served) / wall_s
                                    : 0.0;
    if (args.assert_rps > 0.0 && rps < args.assert_rps) {
        std::fprintf(stderr,
                     "press_loadgen: FAIL throughput %.1f req/s below "
                     "asserted %.1f\n",
                     rps, args.assert_rps);
        ok = false;
    }
    if (args.inject_stuck > 0) {
        if (s.watchdog_trips == 0) {
            std::fprintf(stderr,
                         "press_loadgen: FAIL injected stalls but the "
                         "watchdog never tripped\n");
            ok = false;
        }
        if (s.flight_dumps == 0) {
            std::fprintf(stderr,
                         "press_loadgen: FAIL watchdog tripped without a "
                         "flight-recorder dump\n");
            ok = false;
        }
    }
    if (args.subscribe) {
        if (sub_frames == 0) {
            std::fprintf(stderr,
                         "press_loadgen: FAIL subscribed but no telemetry "
                         "frame arrived\n");
            ok = false;
        }
        if (sub_invalid > 0) {
            std::fprintf(stderr,
                         "press_loadgen: FAIL %llu telemetry frame(s) "
                         "failed press.timeseries/v1 validation\n",
                         static_cast<unsigned long long>(sub_invalid));
            ok = false;
        }
        if (!args.capture_telemetry_path.empty()) {
            press::obs::Json doc = press::obs::Json::object();
            doc["schema"] = "press.timeseries/v1";
            doc["frames"] = press::obs::Json(std::move(captured));
            std::ofstream out(args.capture_telemetry_path);
            out << doc.dump() << "\n";
            if (!out) {
                std::fprintf(stderr, "press_loadgen: cannot write %s\n",
                             args.capture_telemetry_path.c_str());
                ok = false;
            }
        }
    }

    if (!args.quiet) {
        std::printf(
            "{\"mode\":\"in-process\",\"sessions\":%zu,\"chaos\":%.3f,"
            "\"wall_s\":%.3f,\"rps\":%.1f,"
            "\"service\":{\"admitted\":%llu,\"served\":%llu,"
            "\"expired\":%llu,\"evicted\":%llu,\"dropped_closed\":%llu,"
            "\"shed\":%llu,\"queue_full\":%llu,\"backpressure\":%llu,"
            "\"duplicates\":%llu,\"bad_requests\":%llu,\"rejected\":%llu,"
            "\"frames_bad\":%llu,\"mutations\":%llu,"
            "\"slow_drops\":%llu,\"watchdog\":%llu,\"flight_dumps\":%llu,"
            "\"epoch\":%llu},"
            "\"clients\":{\"completed\":%llu,\"abandoned\":%llu,"
            "\"reconnects\":%llu},"
            "\"chaos_links\":{\"sent\":%llu,\"dropped\":%llu,"
            "\"corrupted\":%llu,\"duplicated\":%llu,\"reordered\":%llu,"
            "\"severed_loss\":%llu},"
            "\"introspection\":{\"subscribed\":%s,\"frames\":%llu,"
            "\"taps\":%llu,\"exemplars\":%llu,\"invalid\":%llu,"
            "\"samples\":%llu,\"frames_sent\":%llu,\"frames_dropped\":%llu,"
            "\"slo_alarms\":%llu},"
            "\"balanced\":%s}\n",
            clients.size(), args.chaos, wall_s, rps,
            static_cast<unsigned long long>(s.admitted),
            static_cast<unsigned long long>(s.served),
            static_cast<unsigned long long>(s.expired),
            static_cast<unsigned long long>(s.evicted),
            static_cast<unsigned long long>(s.dropped_closed),
            static_cast<unsigned long long>(s.shed),
            static_cast<unsigned long long>(s.queue_full),
            static_cast<unsigned long long>(s.backpressure),
            static_cast<unsigned long long>(s.duplicates),
            static_cast<unsigned long long>(s.bad_requests),
            static_cast<unsigned long long>(s.rejected),
            static_cast<unsigned long long>(s.frames_bad),
            static_cast<unsigned long long>(s.mutations_applied),
            static_cast<unsigned long long>(s.sessions_dropped_slow),
            static_cast<unsigned long long>(s.watchdog_trips),
            static_cast<unsigned long long>(s.flight_dumps),
            static_cast<unsigned long long>(service.epoch()),
            static_cast<unsigned long long>(completed),
            static_cast<unsigned long long>(abandoned),
            static_cast<unsigned long long>(reconnects),
            static_cast<unsigned long long>(chaos_sent),
            static_cast<unsigned long long>(chaos_dropped),
            static_cast<unsigned long long>(chaos_corrupted),
            static_cast<unsigned long long>(chaos_dup),
            static_cast<unsigned long long>(chaos_reordered),
            static_cast<unsigned long long>(chaos_severed),
            args.subscribe ? "true" : "false",
            static_cast<unsigned long long>(sub_frames),
            static_cast<unsigned long long>(sub_taps),
            static_cast<unsigned long long>(sub_exemplars),
            static_cast<unsigned long long>(sub_invalid),
            static_cast<unsigned long long>(s.telemetry_samples),
            static_cast<unsigned long long>(s.telemetry_frames_sent),
            static_cast<unsigned long long>(s.telemetry_frames_dropped),
            static_cast<unsigned long long>(s.slo_alarms),
            ok ? "true" : "false");
    }
    return ok ? 0 : 1;
}

#ifndef _WIN32
int run_socket(const Args& args) {
    const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET, 0);
    if (fd < 0) {
        std::perror("press_loadgen: socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, args.connect_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        std::perror("press_loadgen: connect");
        ::close(fd);
        return 1;
    }

    press::util::Rng rng(args.seed);
    std::uint32_t seq = 1;
    std::uint64_t completed = 0, rejected = 0, timeouts = 0;
    std::vector<std::uint8_t> buffer(64 * 1024);
    {
        press::control::Hello hello;
        const auto frame = encode(Message{hello}, seq++, {});
        (void)::send(fd, frame.data(), frame.size(), 0);
        (void)::recv(fd, buffer.data(), buffer.size(), 0);  // HelloAck
    }
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < args.requests; ++i) {
        OptimizeRequest req;
        req.budget_us = args.budget_us;
        req.deadline_us = args.deadline_us;
        req.priority = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const std::uint32_t this_seq = seq++;
        const auto frame = encode(Message{req}, this_seq, {});
        if (::send(fd, frame.data(), frame.size(), 0) < 0) break;
        // Wait for this request's terminal frame.
        for (;;) {
            pollfd pfd{fd, POLLIN, 0};
            if (::poll(&pfd, 1, 2000) <= 0) {
                ++timeouts;
                break;
            }
            const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
            if (n <= 0) {
                ++timeouts;
                break;
            }
            try {
                const auto decoded = press::control::decode(
                    std::vector<std::uint8_t>(buffer.begin(),
                                              buffer.begin() + n));
                if (decoded.seq != this_seq) continue;
                if (std::get_if<OptimizeReply>(&decoded.message) != nullptr)
                    ++completed;
                else
                    ++rejected;
            } catch (const press::control::ProtocolError&) {
                continue;
            }
            break;
        }
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    ::close(fd);
    const double rps =
        wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
    if (!args.quiet) {
        std::printf("{\"mode\":\"socket\",\"completed\":%llu,"
                    "\"rejected\":%llu,\"timeouts\":%llu,\"wall_s\":%.3f,"
                    "\"rps\":%.1f}\n",
                    static_cast<unsigned long long>(completed),
                    static_cast<unsigned long long>(rejected),
                    static_cast<unsigned long long>(timeouts), wall_s, rps);
    }
    if (args.assert_rps > 0.0 && rps < args.assert_rps) {
        std::fprintf(stderr,
                     "press_loadgen: FAIL throughput %.1f req/s below "
                     "asserted %.1f\n",
                     rps, args.assert_rps);
        return 1;
    }
    return timeouts == 0 ? 0 : 1;
}
#endif

}  // namespace

int main(int argc, char** argv) {
    Args args;
    if (!parse_args(argc, argv, args)) return 2;
    if (!args.connect_path.empty()) {
#ifndef _WIN32
        return run_socket(args);
#else
        std::fprintf(stderr, "press_loadgen: --connect needs POSIX\n");
        return 2;
#endif
    }
    return run_in_process(args);
}
