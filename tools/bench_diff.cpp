// CI regression gate: diffs a fresh telemetry export against a committed
// baseline (bench/baselines/*.json, schema press.bench_baseline/v1).
//
//   $ bench_diff <baseline.json> <telemetry.json> [--tolerance-pct N]
//
// Deterministic counters that drift beyond the tolerance FAIL the run
// (exit 1); wall-clock gauges only ever WARN — they move with the host.
// Manifest identity is checked first: a press_threads/seed/scenario
// mismatch means the runs are not comparable at all (exit 1), while a
// build_type/compiler/sanitize mismatch softens counter failures to
// warnings. The tolerance can also be set via the environment knob
// PRESS_BENCH_DIFF_TOLERANCE_PCT (the flag wins when both are given).
//
// To refresh a baseline after an intentional behavior change, pass
// --write-baseline <out.json>: the telemetry is distilled with
// obs::make_baseline and written instead of diffed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace {

std::optional<press::obs::Json> load_json(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path);
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return press::obs::Json::parse(buffer.str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: parse error: %s\n", path, e.what());
        return std::nullopt;
    }
}

int usage() {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <telemetry.json> "
                 "[--tolerance-pct N]\n"
                 "       bench_diff --write-baseline <out.json> "
                 "<telemetry.json>\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && std::strcmp(argv[1], "--write-baseline") == 0) {
        if (argc != 4) return usage();
        const auto telemetry = load_json(argv[3]);
        if (!telemetry) return 1;
        const press::obs::Json baseline =
            press::obs::make_baseline(*telemetry);
        std::ofstream out(argv[2]);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write\n", argv[2]);
            return 1;
        }
        out << baseline.dump() << "\n";
        std::printf("%s: baseline written from %s\n", argv[2], argv[3]);
        return out.good() ? 0 : 1;
    }

    if (argc < 3) return usage();
    double tolerance = press::obs::diff_tolerance_from_env();
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance-pct") == 0 && i + 1 < argc) {
            char* end = nullptr;
            tolerance = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || tolerance < 0.0) {
                std::fprintf(stderr, "bad --tolerance-pct value\n");
                return 2;
            }
        } else {
            return usage();
        }
    }

    const auto baseline = load_json(argv[1]);
    const auto current = load_json(argv[2]);
    if (!baseline || !current) return 1;

    const press::obs::DiffResult result =
        press::obs::diff_telemetry(*baseline, *current, tolerance);
    for (const std::string& w : result.warnings)
        std::printf("WARN  %s\n", w.c_str());
    for (const std::string& f : result.failures)
        std::printf("FAIL  %s\n", f.c_str());
    if (!result.comparable) {
        std::printf("bench_diff: runs are not comparable\n");
        return 1;
    }
    if (!result.ok()) {
        std::printf(
            "bench_diff: %zu regression(s) beyond %.2f%% tolerance\n",
            result.failures.size(), tolerance);
        return 1;
    }
    std::printf("bench_diff: ok (%zu warning(s), tolerance %.2f%%)\n",
                result.warnings.size(), tolerance);
    return 0;
}
