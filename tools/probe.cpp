#include <cstdio>
#include <algorithm>
#include "core/scenarios.hpp"
#include "em/channel.hpp"
#include "util/units.hpp"
using namespace press;
int main() {
    core::LinkScenario sc = core::make_link_scenario(101, false);
    auto& med = sc.system.medium();
    auto paths = med.resolve_paths(sc.system.link(0));
    std::printf("num paths: %zu\n", paths.size());
    std::vector<em::Path> sorted = paths;
    std::sort(sorted.begin(), sorted.end(), [](auto&a, auto&b){return std::abs(a.gain)>std::abs(b.gain);});
    for (size_t i = 0; i < std::min<size_t>(15, sorted.size()); ++i) {
        auto&p = sorted[i];
        std::printf("  %-14s amp %.3e (%.1f dB) delay %.1f ns\n", em::to_string(p.kind).c_str(), std::abs(p.gain), util::amplitude_to_db(std::abs(p.gain)), p.delay_s*1e9);
    }
    std::printf("rms delay spread: %.1f ns\n", em::rms_delay_spread(paths)*1e9);
    auto snr = med.true_snr_db(sc.system.link(0));
    std::printf("true SNR: ");
    for (size_t k = 0; k < snr.size(); k += 4) std::printf("%.0f ", snr[k]);
    std::printf("\nmin %.1f max %.1f\n", *std::min_element(snr.begin(),snr.end()), *std::max_element(snr.begin(),snr.end()));
    return 0;
}
