// CI trace gate: validates Chrome Trace Event Format exports (the
// `trace_<name>.json` files written by obs::write_run_exports) with
// obs::validate_trace — phase kinds, flow-event pairing, span identity.
//
//   $ validate_trace trace_perf_snapshot.json [...]
//
// Exits 0 when every file parses and validates; prints the first violation
// per file and exits 1 otherwise, failing the build on malformed traces.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/perfetto.hpp"

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: validate_trace <trace.json> [...]\n");
        return 2;
    }
    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const char* path = argv[i];
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path);
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            const press::obs::Json doc =
                press::obs::Json::parse(buffer.str());
            const std::string violation = press::obs::validate_trace(doc);
            if (!violation.empty()) {
                std::fprintf(stderr, "%s: trace violation: %s\n", path,
                             violation.c_str());
                ++failures;
                continue;
            }
            std::printf(
                "%s: ok (%zu events)\n", path,
                doc.at("traceEvents").as_array().size());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: parse error: %s\n", path, e.what());
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
