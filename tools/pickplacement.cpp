#include <cstdio>
#include "core/experiments.hpp"
#include "util/stats.hpp"
using namespace press;
int main() {
    for (std::uint64_t p = 0; p < 48; ++p) {
        core::LinkScenario sc = core::make_link_scenario(100 + p, false);
        util::Rng rng(7000 + p);
        core::ConfigSweep sweep = core::sweep_configurations(sc, 6, rng);
        std::size_t with10 = 0, total = 0;
        for (std::size_t a = 0; a < 64; ++a) for (std::size_t b = a+1; b < 64; ++b) {
            ++total; for (std::size_t k = 0; k < 52; ++k)
                if (std::abs(sweep.mean_snr_db[a][k]-sweep.mean_snr_db[b][k])>=10){++with10;break;}
        }
        std::vector<double> mins; for (auto&v:sweep.mean_snr_db) mins.push_back(util::min_value(v));
        auto mv = core::null_movements(sweep);
        double mx = mv.empty()?-1:util::max_value(mv);
        // per-trial movements max
        double mxt = 0; for (int t=0;t<6;++t){auto m=core::null_movements_for_trial(sweep,t); if(!m.empty()) mxt=std::max(mxt,util::max_value(m));}
        std::printf("p%llu seed %llu: frac10 %.2f fracmin<20 %.2f movemax(mean) %.0f movemax(trial) %.0f\n",
            (unsigned long long)p, (unsigned long long)(100+p), (double)with10/total, util::fraction_below(mins,20.0), mx, mxt);
    }
    return 0;
}
