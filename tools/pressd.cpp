// pressd — the control-plane service as a daemon.
//
// Wraps control::Service in an AF_UNIX SOCK_SEQPACKET event loop: each
// connected client is one service session, each datagram is one wire
// frame (SEQPACKET preserves frame boundaries, so no length-prefixed
// stream reassembly is needed). The loop poll()s the listener and every
// client, pumps inbound frames into Service::submit, flushes outboxes,
// runs service cycles while work is queued, and maps elapsed wall time
// onto the service SimClock so deadlines expire in real time.
//
// POSIX sockets only — no new dependencies. press_loadgen --connect
// drives it from another process; the in-process loadgen mode and the
// tests exercise the identical Service core without sockets.
//
// Clients may also Subscribe for streamed telemetry (press_top renders
// it); --telemetry-interval-s sets the sampler cadence (0 disables the
// introspection plane entirely).
//
//   pressd --socket /tmp/pressd.sock [--seed N] [--queue N] [--threads N]
//          [--budget-us N] [--duration-s S] [--max-requests N]
//          [--stall-every N] [--telemetry-interval-s S] [--quiet]

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "control/service.hpp"
#include "core/scenarios.hpp"
#include "core/serve.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace {

using press::control::Service;

constexpr std::size_t kMaxFrame = 64 * 1024;

struct Args {
    std::string socket_path = "/tmp/pressd.sock";
    std::uint64_t seed = 1;
    std::size_t queue = 64;
    std::size_t threads = 1;
    double duration_s = 0.0;       // 0 = run until killed
    std::uint64_t max_requests = 0;  // 0 = unlimited
    std::size_t stall_every = 0;
    double telemetry_interval_s = 0.5;
    bool quiet = false;
};

bool parse_args(int argc, char** argv, Args& args) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char* what) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pressd: %s needs a value\n", what);
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--socket") {
            const char* v = next("--socket");
            if (v == nullptr) return false;
            args.socket_path = v;
        } else if (a == "--seed") {
            const char* v = next("--seed");
            if (v == nullptr) return false;
            args.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--queue") {
            const char* v = next("--queue");
            if (v == nullptr) return false;
            args.queue = std::strtoull(v, nullptr, 10);
        } else if (a == "--threads") {
            const char* v = next("--threads");
            if (v == nullptr) return false;
            args.threads = std::strtoull(v, nullptr, 10);
        } else if (a == "--duration-s") {
            const char* v = next("--duration-s");
            if (v == nullptr) return false;
            args.duration_s = std::strtod(v, nullptr);
        } else if (a == "--max-requests") {
            const char* v = next("--max-requests");
            if (v == nullptr) return false;
            args.max_requests = std::strtoull(v, nullptr, 10);
        } else if (a == "--stall-every") {
            const char* v = next("--stall-every");
            if (v == nullptr) return false;
            args.stall_every = std::strtoull(v, nullptr, 10);
        } else if (a == "--telemetry-interval-s") {
            const char* v = next("--telemetry-interval-s");
            if (v == nullptr) return false;
            args.telemetry_interval_s = std::strtod(v, nullptr);
        } else if (a == "--quiet") {
            args.quiet = true;
        } else {
            std::fprintf(stderr, "pressd: unknown flag %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

int make_listener(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET, 0);
    if (fd < 0) {
        std::perror("pressd: socket");
        return -1;
    }
    ::unlink(path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "pressd: socket path too long\n");
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        std::perror("pressd: bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 16) < 0) {
        std::perror("pressd: listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

}  // namespace

int main(int argc, char** argv) {
    Args args;
    if (!parse_args(argc, argv, args)) return 2;

    press::obs::set_enabled(true);
    press::obs::flight_install_signal_dump("pressd");

    // One blocked-link study room is the daemon's scene; richer scene
    // selection can ride on a future flag without touching the loop.
    auto scenario = press::core::make_link_scenario(args.seed,
                                                   /*line_of_sight=*/false);
    press::core::ServeConfig serve_config;
    serve_config.threads = args.threads;
    serve_config.seed = args.seed * 0x9E3779B97F4A7C15ull + 1;

    press::control::ServiceOptions options;
    options.queue_capacity = args.queue;
    options.inject_stall_every = args.stall_every;
    options.telemetry.interval_s = args.telemetry_interval_s;
    Service service(
        press::core::make_service_engine(scenario.system, serve_config),
        options);

    const int listener = make_listener(args.socket_path);
    if (listener < 0) return 1;
    if (!args.quiet)
        std::fprintf(stderr, "pressd: listening on %s\n",
                     args.socket_path.c_str());

    std::map<int, Service::SessionId> sessions;  // fd -> session
    // fds whose last send hit a full kernel buffer (or failed); their
    // outboxes stay untouched until poll reports the socket writable
    // again, so a slow reader backs pressure up into the service instead
    // of frames silently vanishing after take_outgoing.
    std::set<int> write_blocked;
    const auto start = std::chrono::steady_clock::now();
    auto last_tick = start;
    std::vector<std::uint8_t> buffer(kMaxFrame);
    bool running = true;

    while (running) {
        std::vector<pollfd> fds;
        fds.push_back({listener, POLLIN, 0});
        for (const auto& [fd, id] : sessions) {
            short events = POLLIN;
            if (service.outbox_depth(id) > 0) events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }
        // Short timeout: deadlines and the duration bound advance even
        // when no client is talking.
        const int ready = ::poll(fds.data(), fds.size(), 10);
        if (ready < 0 && errno != EINTR) {
            std::perror("pressd: poll");
            break;
        }

        // Wall time maps onto the service SimClock so queued deadlines
        // expire in real time (engine cycles advance it additionally).
        const auto now = std::chrono::steady_clock::now();
        service.advance_clock(
            std::chrono::duration<double>(now - last_tick).count());
        last_tick = now;

        if (fds[0].revents & POLLIN) {
            const int client = ::accept(listener, nullptr, nullptr);
            if (client >= 0) sessions[client] = service.connect();
        }

        std::vector<int> closed;
        for (std::size_t i = 1; i < fds.size(); ++i) {
            const int fd = fds[i].fd;
            const auto sit = sessions.find(fd);
            if (sit == sessions.end()) continue;
            if (fds[i].revents & (POLLERR | POLLHUP)) {
                closed.push_back(fd);
                continue;
            }
            if (fds[i].revents & POLLOUT) write_blocked.erase(fd);
            if (fds[i].revents & POLLIN) {
                const ssize_t n =
                    ::recv(fd, buffer.data(), buffer.size(), MSG_DONTWAIT);
                if (n > 0) {
                    service.submit(sit->second,
                                   std::vector<std::uint8_t>(
                                       buffer.begin(), buffer.begin() + n));
                } else if (n == 0) {
                    closed.push_back(fd);
                }
            }
        }

        // Serve while work is queued, then flush outboxes.
        while (service.run_cycle()) {
        }
        for (auto& [fd, id] : sessions) {
            if (write_blocked.count(fd) != 0) continue;  // await POLLOUT
            while (const auto* frame = service.peek_outgoing(id)) {
                const ssize_t n =
                    ::send(fd, frame->data(), frame->size(), MSG_DONTWAIT);
                if (n == static_cast<ssize_t>(frame->size())) {
                    service.pop_outgoing(id);
                    continue;
                }
                // EAGAIN (reader's buffer full) or a dead peer: the frame
                // stays in the outbox. A full buffer resumes on POLLOUT;
                // a dead peer surfaces as POLLERR/POLLHUP and the session
                // is closed with its frames accounted.
                write_blocked.insert(fd);
                break;
            }
        }
        for (const int fd : closed) {
            service.disconnect(sessions[fd]);
            sessions.erase(fd);
            write_blocked.erase(fd);
            ::close(fd);
        }

        const double elapsed =
            std::chrono::duration<double>(now - start).count();
        if (args.duration_s > 0.0 && elapsed >= args.duration_s)
            running = false;
        if (args.max_requests > 0 &&
            service.stats().served >= args.max_requests)
            running = false;
    }

    for (const auto& [fd, id] : sessions) ::close(fd);
    ::close(listener);
    ::unlink(args.socket_path.c_str());

    const auto& s = service.stats();
    if (!args.quiet) {
        std::fprintf(stderr,
                     "pressd: served=%llu rejected=%llu expired=%llu "
                     "evicted=%llu watchdog=%llu epochs=%llu balanced=%d\n",
                     static_cast<unsigned long long>(s.served),
                     static_cast<unsigned long long>(s.rejected),
                     static_cast<unsigned long long>(s.expired),
                     static_cast<unsigned long long>(s.evicted),
                     static_cast<unsigned long long>(s.watchdog_trips),
                     static_cast<unsigned long long>(service.epoch()),
                     service.accounting_balanced() ? 1 : 0);
        std::fprintf(
            stderr,
            "pressd: telemetry samples=%llu subs=%llu frames_sent=%llu "
            "frames_dropped=%llu taps=%llu slo_alarms=%llu revision=%llu\n",
            static_cast<unsigned long long>(s.telemetry_samples),
            static_cast<unsigned long long>(s.subscriptions),
            static_cast<unsigned long long>(s.telemetry_frames_sent),
            static_cast<unsigned long long>(s.telemetry_frames_dropped),
            static_cast<unsigned long long>(s.flight_taps),
            static_cast<unsigned long long>(s.slo_alarms),
            static_cast<unsigned long long>(service.telemetry_revision()));
    }
    return service.accounting_balanced() ? 0 : 1;
}
