// CI schema gate: validates press.telemetry/v1 exports against the schema
// documented in docs/TELEMETRY.md (as enforced by obs::validate_telemetry,
// the same checker the exporter round-trip test uses).
//
//   $ validate_telemetry telemetry_perf_snapshot.json [...]
//
// Exits 0 when every file parses and validates; prints the first violation
// and exits 1 otherwise, failing the build on schema drift.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/json.hpp"

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: validate_telemetry <telemetry.json> [...]\n");
        return 2;
    }
    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const char* path = argv[i];
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path);
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            const press::obs::Json doc =
                press::obs::Json::parse(buffer.str());
            const std::string violation =
                press::obs::validate_telemetry(doc);
            if (!violation.empty()) {
                std::fprintf(stderr, "%s: schema violation: %s\n", path,
                             violation.c_str());
                ++failures;
                continue;
            }
            std::printf("%s: ok (%s, scenario \"%s\")\n", path,
                        doc.at("schema").as_string().c_str(),
                        doc.at("manifest").at("scenario").as_string().c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: parse error: %s\n", path, e.what());
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
