// CI schema gate: validates telemetry artifacts against the schemas
// documented in docs/TELEMETRY.md, using the same checkers the
// exporter/sampler round-trip tests use. Two document families are
// recognized by their `schema` field:
//
//   press.telemetry/v*   full metric exports (obs::validate_telemetry)
//   press.timeseries/v1  streamed window frames or a captured
//                        subscription stream (obs::validate_timeseries)
//
//   $ validate_telemetry [--require-exemplars] telemetry.json [...]
//
// --require-exemplars additionally fails any press.timeseries/v1
// document that does not contain at least one exemplar with a nonzero
// trace id — the CI smoke uses it to prove the live exemplar path end
// to end (sampler -> wire -> press_top capture).
//
// Exits 0 when every file parses and validates; prints the first violation
// and exits 1 otherwise, failing the build on schema drift.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/timeseries.hpp"

namespace {

using press::obs::Json;

std::size_t count_traced_exemplars(const Json& frame) {
    if (!frame.is_object() || !frame.contains("exemplars") ||
        !frame.at("exemplars").is_array())
        return 0;
    std::size_t n = 0;
    for (const Json& e : frame.at("exemplars").as_array()) {
        if (e.is_object() && e.contains("trace_id") &&
            e.at("trace_id").is_string() &&
            e.at("trace_id").as_string() != "0x0")
            ++n;
    }
    return n;
}

}  // namespace

int main(int argc, char** argv) {
    bool require_exemplars = false;
    std::vector<const char*> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--require-exemplars")
            require_exemplars = true;
        else
            paths.push_back(argv[i]);
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: validate_telemetry [--require-exemplars] "
                     "<telemetry.json> [...]\n");
        return 2;
    }
    int failures = 0;
    for (const char* path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path);
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            const Json doc = Json::parse(buffer.str());
            const bool timeseries =
                doc.is_object() && doc.contains("schema") &&
                doc.at("schema").is_string() &&
                doc.at("schema").as_string() == "press.timeseries/v1";
            const std::string violation =
                timeseries ? press::obs::validate_timeseries(doc)
                           : press::obs::validate_telemetry(doc);
            if (!violation.empty()) {
                std::fprintf(stderr, "%s: schema violation: %s\n", path,
                             violation.c_str());
                ++failures;
                continue;
            }
            if (timeseries) {
                std::size_t frames = 1;
                std::size_t exemplars = count_traced_exemplars(doc);
                if (doc.contains("frames")) {
                    const auto& list = doc.at("frames").as_array();
                    frames = list.size();
                    exemplars = 0;
                    for (const Json& frame : list)
                        exemplars += count_traced_exemplars(frame);
                }
                if (require_exemplars && exemplars == 0) {
                    std::fprintf(stderr,
                                 "%s: no exemplar with a nonzero trace id\n",
                                 path);
                    ++failures;
                    continue;
                }
                std::printf("%s: ok (press.timeseries/v1, %zu frame(s), "
                            "%zu traced exemplar(s))\n",
                            path, frames, exemplars);
            } else {
                if (require_exemplars) {
                    std::fprintf(stderr,
                                 "%s: --require-exemplars needs a "
                                 "press.timeseries/v1 document\n",
                                 path);
                    ++failures;
                    continue;
                }
                std::printf(
                    "%s: ok (%s, scenario \"%s\")\n", path,
                    doc.at("schema").as_string().c_str(),
                    doc.at("manifest").at("scenario").as_string().c_str());
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: parse error: %s\n", path, e.what());
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
