#include <cstdio>
#include <algorithm>
#include "core/scenarios.hpp"
#include "util/stats.hpp"
using namespace press;
int main() {
    core::LinkScenario sc = core::make_link_scenario(101, false);
    auto& arr = sc.system.medium().array(0);
    auto space = arr.config_space();
    std::vector<double> mins, means;
    for (std::uint64_t c = 0; c < space.size(); ++c) {
        sc.system.apply(0, space.at(c));
        auto snr = sc.system.true_snr_db(0);
        mins.push_back(util::min_value(snr));
        means.push_back(util::mean(snr));
    }
    std::printf("true min SNR across configs: min %.1f med %.1f max %.1f\n",
        util::min_value(mins), util::median(mins), util::max_value(mins));
    std::printf("true mean SNR across configs: min %.1f max %.1f\n", util::min_value(means), util::max_value(means));
    // element path strength vs env paths
    sc.system.apply(0, space.at(0));
    auto paths = sc.system.medium().resolve_paths(sc.system.link(0));
    double env2 = 0, elem2 = 0, envmax = 0;
    for (auto& p : paths) {
        if (p.kind == em::PathKind::kPressElement) { elem2 += std::norm(p.gain); std::printf("elem amp %.2e\n", std::abs(p.gain)); }
        else { env2 += std::norm(p.gain); envmax = std::max(envmax, std::abs(p.gain)); }
    }
    std::printf("env power %.3e (max amp %.3e), elem power %.3e\n", env2, envmax, elem2);
    return 0;
}
