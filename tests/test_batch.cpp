// Determinism tests for the parallel batch evaluator and the batched
// searchers: identical results for 1, 2 and 8 worker threads, PRESS_THREADS
// resolution, no duplicate evaluations from the memoizing greedy, and
// System::optimize_fast agreeing with itself across thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "control/batch.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::control {
namespace {

/// A deterministic-but-nontrivial score: mixes the configuration with two
/// draws from the candidate's private stream (so any cross-candidate rng
/// sharing would show up as thread-count dependence).
double noisy_score(const surface::Config& c, util::Rng& rng,
                   EvalScratch& /*scratch*/) {
    double s = rng.uniform(0.0, 1.0);
    for (std::size_t e = 0; e < c.size(); ++e)
        s += static_cast<double>(c[e]) * static_cast<double>(e + 1) +
             rng.gaussian(0.0, 0.25);
    return s;
}

std::vector<surface::Config> some_batch(std::size_t n) {
    std::vector<surface::Config> batch;
    for (std::size_t i = 0; i < n; ++i)
        batch.push_back({static_cast<int>(i % 4),
                         static_cast<int>((i / 4) % 4),
                         static_cast<int>((i / 16) % 4)});
    return batch;
}

TEST(BatchEvaluator, BitIdenticalAcrossThreadCounts) {
    const auto run = [](std::size_t threads) {
        BatchEvaluator pool(noisy_score, /*seed=*/42, threads);
        std::vector<double> all;
        for (const std::size_t n : {7u, 1u, 16u, 3u}) {
            const std::vector<double> scores = pool.evaluate(some_batch(n));
            all.insert(all.end(), scores.begin(), scores.end());
        }
        return all;
    };
    const std::vector<double> one = run(1);
    const std::vector<double> two = run(2);
    const std::vector<double> eight = run(8);
    ASSERT_EQ(one.size(), two.size());
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], two[i]) << "candidate " << i;
        EXPECT_EQ(one[i], eight[i]) << "candidate " << i;
    }
}

TEST(BatchEvaluator, SeedsDependOnGlobalIndexNotBatchBoundaries) {
    // Evaluating [a, b] in one batch or two must give the same scores.
    BatchEvaluator joined(noisy_score, 7, 2);
    BatchEvaluator split(noisy_score, 7, 2);
    const std::vector<surface::Config> batch = some_batch(6);
    const std::vector<double> all = joined.evaluate(batch);
    const std::vector<double> head = split.evaluate(
        {batch.begin(), batch.begin() + 2});
    const std::vector<double> tail = split.evaluate(
        {batch.begin() + 2, batch.end()});
    ASSERT_EQ(all.size(), head.size() + tail.size());
    for (std::size_t i = 0; i < head.size(); ++i)
        EXPECT_EQ(all[i], head[i]);
    for (std::size_t i = 0; i < tail.size(); ++i)
        EXPECT_EQ(all[head.size() + i], tail[i]);
    EXPECT_EQ(split.evaluated(), 6u);
}

TEST(BatchEvaluator, ResolvesThreadCountFromEnvironment) {
    EXPECT_EQ(BatchEvaluator::resolve_threads(5), 5u);
    ::setenv("PRESS_THREADS", "3", 1);
    EXPECT_EQ(BatchEvaluator::resolve_threads(0), 3u);
    EXPECT_EQ(BatchEvaluator::resolve_threads(2), 2u);  // explicit wins
    ::setenv("PRESS_THREADS", "999", 1);
    EXPECT_EQ(BatchEvaluator::resolve_threads(0), 64u);  // clamped
    ::setenv("PRESS_THREADS", "garbage", 1);
    EXPECT_GE(BatchEvaluator::resolve_threads(0), 1u);  // falls through
    ::unsetenv("PRESS_THREADS");
    EXPECT_GE(BatchEvaluator::resolve_threads(0), 1u);
}

TEST(BatchEvaluator, RethrowsWorkerExceptions) {
    BatchEvaluator pool(
        [](const surface::Config& c, util::Rng&, EvalScratch&) -> double {
            if (c[0] == 2) throw std::runtime_error("bad candidate");
            return 1.0;
        },
        1, 4);
    EXPECT_THROW(pool.evaluate(some_batch(12)), std::runtime_error);
    // The pool must survive a throwing batch and keep serving.
    const std::vector<double> ok = pool.evaluate({{0, 0, 0}, {1, 1, 1}});
    EXPECT_EQ(ok, (std::vector<double>{1.0, 1.0}));
}

TEST(BatchEvaluator, CoordinateSweepSharesTheGlobalRngStream) {
    // Scoring a coordinate sweep through evaluate_coordinate must consume
    // exactly the per-candidate streams that scoring the expanded
    // configurations through evaluate would — mixing entry points may not
    // fork the rng sequence.
    const CoordinateScoreFn cscore =
        [](const CoordinateBatch& cb, std::size_t i, util::Rng& rng,
           EvalScratch& s) {
            surface::Config c = *cb.base;
            c[cb.element] = (*cb.states)[i];
            return noisy_score(c, rng, s);
        };
    const surface::Config base{1, 2, 3};
    const std::vector<int> states{0, 1, 2, 3};

    BatchEvaluator expanded(noisy_score, 42, 2);
    std::vector<surface::Config> configs;
    for (const int st : states) {
        configs.push_back(base);
        configs.back()[1] = st;
    }
    expanded.evaluate(some_batch(3));  // offset the global index
    const std::vector<double> want = expanded.evaluate(configs);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        BatchEvaluator pool(noisy_score, 42, threads);
        pool.set_coordinate_score(cscore);
        pool.evaluate(some_batch(3));
        const std::vector<double> got =
            pool.evaluate_coordinate({&base, 1, &states});
        EXPECT_EQ(got, want) << threads << " threads";
        EXPECT_EQ(pool.evaluated(), 7u);
    }
}

TEST(BatchEvaluator, ArenaGrowthIsBoundedByWorkersNotBatches) {
    // With a fixed working-set size, each worker's arena grows at most
    // once per buffer (when that worker scores its first candidate), so
    // total growth is bounded by workers x buffers no matter how many
    // batches run — the zero-allocation steady-state contract.
    constexpr std::size_t kThreads = 4;
    BatchEvaluator pool(
        [](const surface::Config& c, util::Rng&, EvalScratch& s) {
            s.resize_tracked(s.snr_db, 64);
            s.resize_tracked(s.h, 64);  // grows s.h.re and s.h.im
            return static_cast<double>(c[0]);
        },
        3, kThreads);
    for (int round = 0; round < 8; ++round) pool.evaluate(some_batch(16));
    const BatchEvaluator::ArenaStats stats = pool.arena_stats();
    EXPECT_GT(stats.grow_events, 0u);
    EXPECT_LE(stats.grow_events, kThreads * 3u);
    EXPECT_LE(stats.bytes_reserved, kThreads * 3u * 64 * sizeof(double));
}

TEST(BatchEvaluator, DeltaToggleParsesTheEnvironment) {
    ::unsetenv("PRESS_DELTA");
    EXPECT_TRUE(coordinate_delta_enabled());
    ::setenv("PRESS_DELTA", "0", 1);
    EXPECT_FALSE(coordinate_delta_enabled());
    ::setenv("PRESS_DELTA", "OFF", 1);
    EXPECT_FALSE(coordinate_delta_enabled());
    ::setenv("PRESS_DELTA", "false", 1);
    EXPECT_FALSE(coordinate_delta_enabled());
    ::setenv("PRESS_DELTA", "1", 1);
    EXPECT_TRUE(coordinate_delta_enabled());
    ::unsetenv("PRESS_DELTA");
}

// ----------------------------------------------------- batched searchers

surface::ConfigSpace small_space() {
    return surface::ConfigSpace(std::vector<int>{4, 4, 4});
}

/// Deterministic objective with a unique optimum at (3, 2, 1).
double plateau_score(const surface::Config& c) {
    const int target[3] = {3, 2, 1};
    double s = 0.0;
    for (std::size_t e = 0; e < c.size(); ++e)
        s -= std::abs(c[e] - target[e]) * (1.0 + 0.1 * double(e));
    return s;
}

TEST(SearchBatched, ExhaustiveMatchesSerialForAnyChunking) {
    const surface::ConfigSpace space = small_space();
    const EvalFn eval = plateau_score;
    const BatchEvalFn beval = [](const std::vector<surface::Config>& b) {
        std::vector<double> s;
        for (const surface::Config& c : b) s.push_back(plateau_score(c));
        return s;
    };
    ExhaustiveSearcher searcher;
    util::Rng rng(1);
    const SearchResult serial = searcher.search(space, eval, 64, rng);
    for (const std::size_t chunk : {1u, 5u, 16u, 64u, 100u}) {
        util::Rng rng_b(1);
        const SearchResult batched = searcher.search_batched(
            space, beval, 64, rng_b, nullptr, chunk);
        EXPECT_EQ(batched.best_config, serial.best_config);
        EXPECT_EQ(batched.best_score, serial.best_score);
        EXPECT_EQ(batched.evaluations, serial.evaluations);
        EXPECT_EQ(batched.trajectory, serial.trajectory);
    }
}

TEST(SearchBatched, GreedyMatchesSerialEvaluationSequence) {
    const surface::ConfigSpace space = small_space();
    std::vector<surface::Config> serial_order, batched_order;
    const EvalFn eval = [&](const surface::Config& c) {
        serial_order.push_back(c);
        return plateau_score(c);
    };
    const BatchEvalFn beval = [&](const std::vector<surface::Config>& b) {
        std::vector<double> s;
        for (const surface::Config& c : b) {
            batched_order.push_back(c);
            s.push_back(plateau_score(c));
        }
        return s;
    };
    GreedyCoordinateDescent searcher;
    util::Rng rng_a(3), rng_b(3);
    const SearchResult serial = searcher.search(space, eval, 40, rng_a);
    const SearchResult batched =
        searcher.search_batched(space, beval, 40, rng_b);
    EXPECT_EQ(serial.best_config, batched.best_config);
    EXPECT_EQ(serial.best_score, batched.best_score);
    EXPECT_EQ(serial_order, batched_order);
}

TEST(SearchBatched, DefaultAdapterCoversEveryStrategy) {
    const surface::ConfigSpace space = small_space();
    const BatchEvalFn beval = [](const std::vector<surface::Config>& b) {
        std::vector<double> s;
        for (const surface::Config& c : b) s.push_back(plateau_score(c));
        return s;
    };
    for (const auto& searcher : all_searchers()) {
        util::Rng rng(11);
        const SearchResult r =
            searcher->search_batched(space, beval, 32, rng);
        EXPECT_GE(r.evaluations, 1u) << searcher->name();
        EXPECT_EQ(r.trajectory.size(), r.evaluations) << searcher->name();
    }
}

TEST(GreedyMemoization, NeverEvaluatesAConfigurationTwice) {
    const surface::ConfigSpace space = small_space();
    std::multiset<surface::Config> seen;
    const EvalFn eval = [&](const surface::Config& c) {
        seen.insert(c);
        return plateau_score(c);
    };
    GreedyCoordinateDescent searcher;
    util::Rng rng(5);
    // A budget much larger than the space: without memoization the
    // restarts would re-measure the same neighborhoods over and over.
    const SearchResult r = searcher.search(space, eval, 1000, rng);
    EXPECT_EQ(seen.size(), r.evaluations);
    for (const surface::Config& c : seen)
        EXPECT_EQ(seen.count(c), 1u);
    // Once every reachable configuration is memoized the search stops
    // instead of spinning on free lookups.
    EXPECT_LE(r.evaluations, space.size());
    EXPECT_EQ(r.best_config, (surface::Config{3, 2, 1}));
}

// ------------------------------------------------------- optimize_fast

TEST(OptimizeFast, DeterministicAcrossThreadCounts) {
    const auto run = [](std::size_t threads) {
        core::LinkScenario scenario = core::make_link_scenario(21, false);
        util::Rng rng(6);
        return scenario.system.optimize_fast(
            scenario.array_id, MinSnrObjective(0),
            GreedyCoordinateDescent(), ControlPlaneModel::fast(), 0.25,
            rng, threads);
    };
    const OptimizationOutcome one = run(1);
    const OptimizationOutcome two = run(2);
    const OptimizationOutcome eight = run(8);
    EXPECT_EQ(one.search.best_config, two.search.best_config);
    EXPECT_EQ(one.search.best_config, eight.search.best_config);
    EXPECT_EQ(one.search.best_score, two.search.best_score);
    EXPECT_EQ(one.search.best_score, eight.search.best_score);
    EXPECT_EQ(one.search.trajectory, two.search.trajectory);
    EXPECT_EQ(one.search.trajectory, eight.search.trajectory);
    EXPECT_EQ(one.elapsed_s, two.elapsed_s);
}

TEST(OptimizeFast, DeltaPathMatchesRecomputeBitExactly) {
    // The incremental coordinate-delta path (base response cached per
    // coordinate) and the recompute-per-candidate path must produce
    // identical SearchResults — same bits, any thread count. Both add the
    // swept element's row last, so this is an equality, not a tolerance.
    const auto run = [](const char* delta, std::size_t threads,
                        bool mean_objective) {
        ::setenv("PRESS_DELTA", delta, 1);
        core::LinkScenario scenario = core::make_link_scenario(21, false);
        util::Rng rng(6);
        OptimizationOutcome o;
        if (mean_objective)
            o = scenario.system.optimize_fast(
                scenario.array_id, MeanSnrObjective(0),
                GreedyCoordinateDescent(), ControlPlaneModel::fast(), 0.25,
                rng, threads);
        else
            o = scenario.system.optimize_fast(
                scenario.array_id, MinSnrObjective(0),
                GreedyCoordinateDescent(), ControlPlaneModel::fast(), 0.25,
                rng, threads);
        ::unsetenv("PRESS_DELTA");
        return o.search;
    };
    for (const bool mean_objective : {false, true}) {
        const SearchResult on = run("1", 1, mean_objective);
        for (const std::size_t threads : {1u, 3u, 8u}) {
            const SearchResult off = run("0", threads, mean_objective);
            EXPECT_EQ(on.best_config, off.best_config);
            EXPECT_EQ(on.best_score, off.best_score);
            EXPECT_EQ(on.best_score_remeasured, off.best_score_remeasured);
            EXPECT_EQ(on.trajectory, off.trajectory);
            const SearchResult on_t = run("1", threads, mean_objective);
            EXPECT_EQ(on.trajectory, on_t.trajectory);
            EXPECT_EQ(on.best_score_remeasured,
                      on_t.best_score_remeasured);
        }
    }
}

TEST(OptimizeFast, FusedAndGeneralObjectivesAgreeOnMinSnr) {
    // MinSnrObjective takes the fused path (no Observation); an objective
    // with the same score function but no fused_spec() takes the general
    // path. Min is association-insensitive, and both paths draw one
    // link's noise from the same candidate stream, so the two searches
    // must match bit-for-bit on a single-link scenario.
    class UnfusedMinSnr : public Objective {
    public:
        double score(const Observation& obs) const override {
            return MinSnrObjective(0).score(obs);
        }
        std::string name() const override { return "unfused-min-snr"; }
    };
    const auto run = [](const Objective& objective) {
        core::LinkScenario scenario = core::make_link_scenario(17, false);
        util::Rng rng(4);
        return scenario.system
            .optimize_fast(scenario.array_id, objective,
                           GreedyCoordinateDescent(),
                           ControlPlaneModel::fast(), 0.2, rng, 2)
            .search;
    };
    const SearchResult fused = run(MinSnrObjective(0));
    const SearchResult general = run(UnfusedMinSnr());
    EXPECT_EQ(fused.best_config, general.best_config);
    EXPECT_EQ(fused.best_score, general.best_score);
    EXPECT_EQ(fused.trajectory, general.trajectory);
}

TEST(OptimizeFast, LeavesTheBestConfigurationApplied) {
    core::LinkScenario scenario = core::make_link_scenario(8, false);
    util::Rng rng(2);
    const OptimizationOutcome outcome = scenario.system.optimize_fast(
        scenario.array_id, MinSnrObjective(0), ExhaustiveSearcher(),
        ControlPlaneModel::fast(), 1.0, rng);
    EXPECT_EQ(scenario.system.medium()
                  .array(scenario.array_id)
                  .current_config(),
              outcome.search.best_config);
    EXPECT_GT(outcome.search.evaluations, 0u);
    EXPECT_GT(outcome.elapsed_s, 0.0);
    EXPECT_EQ(outcome.trial_cost_s * double(outcome.search.evaluations),
              outcome.elapsed_s);
}

TEST(OptimizeFast, AgreesWithSerialOptimizeOnTheWinner) {
    // With a deterministic exhaustive sweep, the cached parallel path and
    // the serial controller must crown the same configuration (scores are
    // measured with different noise draws, so compare the argmax only
    // via the true objective).
    core::LinkScenario cached = core::make_link_scenario(33, false);
    core::LinkScenario serial = core::make_link_scenario(33, false);
    const MinSnrObjective objective(0);
    util::Rng rng_a(9), rng_b(9);
    const OptimizationOutcome fast = cached.system.optimize_fast(
        cached.array_id, objective, ExhaustiveSearcher(),
        ControlPlaneModel::prototype(), 400.0, rng_a);
    const OptimizationOutcome slow = serial.system.optimize(
        serial.array_id, objective, ExhaustiveSearcher(),
        ControlPlaneModel::prototype(), 400.0, rng_b);
    EXPECT_EQ(fast.search.evaluations, slow.search.evaluations);
    const double true_fast =
        objective.score(cached.system.observe_true());
    const double true_slow =
        objective.score(serial.system.observe_true());
    // Both swept all 64 configurations; measurement noise may pick
    // near-tied winners, so allow a small true-objective gap.
    EXPECT_NEAR(true_fast, true_slow, 3.0);
}

TEST(OptimizeFast, RespectsInjectedFaults) {
    core::LinkScenario scenario = core::make_link_scenario(14, false);
    fault::Fault stuck;
    stuck.element = 0;
    stuck.type = fault::FaultType::kStuckAt;
    stuck.stuck_state = 1;
    fault::FaultModel model(util::Rng(4));
    model.add(stuck);
    scenario.system.inject_faults(scenario.array_id, std::move(model));
    util::Rng rng(12);
    const OptimizationOutcome outcome = scenario.system.optimize_fast(
        scenario.array_id, MinSnrObjective(0), ExhaustiveSearcher(),
        ControlPlaneModel::fast(), 1.0, rng);
    // Whatever the search requested, the stuck element pinned its state.
    EXPECT_EQ(scenario.system.medium()
                  .array(scenario.array_id)
                  .current_config()[0],
              1);
    EXPECT_GT(outcome.search.evaluations, 0u);
}

}  // namespace
}  // namespace press::control
