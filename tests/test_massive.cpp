// Massive-element (RFocus-regime) scaling properties: the 1,000+ element
// scene builds and warms, the tiled-SoA basis stays bit-faithful to
// direct synthesis, the sharded BatchEvaluator and the majority-vote
// searcher are bit-reproducible across worker counts and kernel flavors,
// and the vote searcher actually solves separable problems on a fraction
// of greedy's budget. The 2^1024 config space means nothing here may
// call ConfigSpace::size() or at() on the massive scene.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "control/batch.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/link_cache.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "em/channel.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

namespace press::core {
namespace {

using control::BatchEvaluator;
using control::ControlPlaneModel;
using control::GreedyCoordinateDescent;
using control::MajorityVoteSearcher;
using control::MinSnrObjective;
using control::RandomizedPartitionSearcher;
using control::SearchResult;

surface::Config random_config(const surface::ConfigSpace& space,
                              util::Rng& rng) {
    const std::vector<int>& radices = space.radices();
    surface::Config c(space.num_elements());
    for (std::size_t e = 0; e < c.size(); ++e)
        c[e] = static_cast<int>(rng.uniform_int(0, radices[e] - 1));
    return c;
}

TEST(MassiveScenario, ShapeAndBasisLayout) {
    LinkScenario scenario = make_massive_scenario(1024, 5);
    const sdr::Medium& medium = scenario.system.medium();
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    ASSERT_EQ(space.num_elements(), 1024u);
    for (const int radix : space.radices()) EXPECT_EQ(radix, 2);
    // 2^1024 points: counting the space must refuse, not wrap.
    EXPECT_THROW((void)space.size(), std::overflow_error);

    LinkCache cache;
    cache.warm(medium, scenario.link_id,
               scenario.system.link(scenario.link_id));
    const LinkCache::BasisLayout layout =
        cache.basis_layout(scenario.link_id, scenario.array_id);
    EXPECT_EQ(layout.rows, 2048u);  // 1024 elements x 2 states
    EXPECT_EQ(layout.num_sc, medium.ofdm().num_used());
    // Rows are padded to the kernel lane width and stored as one
    // contiguous [re | im] block per row.
    EXPECT_GE(layout.row_stride, layout.num_sc);
    EXPECT_EQ(layout.row_stride % util::kernels::kLanes, 0u);
    EXPECT_EQ(layout.bytes,
              layout.rows * 2 * layout.row_stride * sizeof(double));
}

TEST(MassiveScenario, TiledBasisMatchesDirectSynthesis) {
    // Small enough that re-tracing per configuration is affordable, big
    // enough that the subcarrier tiling and row blocking are exercised
    // with many gathered rows.
    LinkScenario scenario = make_massive_scenario(96, 11);
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    util::Rng rng(3);
    for (int trial = 0; trial < 4; ++trial) {
        scenario.system.apply(scenario.array_id, random_config(space, rng));
        const util::CVec cached =
            scenario.system.channel_response(scenario.link_id);
        const util::CVec direct = em::frequency_response(
            scenario.system.medium().resolve_paths(
                scenario.system.link(scenario.link_id)),
            scenario.system.medium().ofdm().used_frequencies_hz());
        ASSERT_EQ(cached.size(), direct.size());
        for (std::size_t k = 0; k < cached.size(); ++k) {
            EXPECT_DOUBLE_EQ(cached[k].real(), direct[k].real());
            EXPECT_DOUBLE_EQ(cached[k].imag(), direct[k].imag());
        }
    }
}

// The sharded evaluator must produce bitwise-identical result vectors
// for any worker count: per-candidate rng streams hang off the global
// candidate index, never off the shard or thread that ran them.
TEST(MassiveSearch, ShardedEvaluatorBitIdenticalAcrossThreadCounts) {
    const auto run = [](std::size_t threads) {
        BatchEvaluator pool(
            [](const surface::Config& c, util::Rng& rng,
               control::EvalScratch&) {
                double acc = rng.uniform(0.0, 1.0);
                for (const int s : c) acc += s;
                return acc;
            },
            /*seed=*/99, threads);
        std::vector<surface::Config> batch;
        util::Rng rng(7);
        for (std::size_t i = 0; i < 1000; ++i) {
            surface::Config c(64);
            for (auto& s : c) s = static_cast<int>(rng.uniform_int(0, 3));
            batch.push_back(std::move(c));
        }
        return pool.evaluate(batch);
    };
    const std::vector<double> one = run(1);
    const std::vector<double> three = run(3);
    const std::vector<double> eight = run(8);
    EXPECT_EQ(one, three);
    EXPECT_EQ(one, eight);
}

TEST(MassiveSearch, ShardSizePolicy) {
    // ~4 shards per worker, never empty, floor of one task per shard so
    // small batches keep per-candidate parallelism.
    EXPECT_EQ(BatchEvaluator::shard_size_for(0, 8), 1u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(4, 8), 1u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(64, 8), 2u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 8), 128u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 1), 1024u);
}

// The tentpole reproducibility property: a majority-vote search over a
// 1,024-element scene lands on the same configuration, bit for bit, no
// matter how many evaluator threads score its probe batches and which
// kernel flavor does the arithmetic.
TEST(MassiveSearch, MajorityVoteBitIdenticalAcrossThreadsAndKernels) {
    const ControlPlaneModel plane = ControlPlaneModel::fast();
    control::SetConfig probe;
    probe.config.assign(1024, 0);
    const double trial_s = plane.config_trial_time_s(probe, 1, 64);
    const double budget_s = 200.0 * trial_s;  // ~3 vote rounds

    const auto run = [&](std::size_t threads,
                         util::kernels::Dispatch dispatch) {
        const util::kernels::Dispatch before = util::kernels::active();
        util::kernels::set_dispatch(dispatch);
        LinkScenario scenario = make_massive_scenario(1024, 42);
        util::Rng rng(17);
        const auto outcome = scenario.system.optimize_fast(
            scenario.array_id, MinSnrObjective(0), MajorityVoteSearcher(),
            plane, budget_s, rng, threads);
        util::kernels::set_dispatch(before);
        return outcome.search;
    };
    const SearchResult base = run(1, util::kernels::Dispatch::kScalar);
    const SearchResult threaded = run(8, util::kernels::Dispatch::kScalar);
    const SearchResult native = run(1, util::kernels::Dispatch::kNative);
    EXPECT_EQ(base.best_config, threaded.best_config);
    EXPECT_EQ(base.best_score, threaded.best_score);
    EXPECT_EQ(base.evaluations, threaded.evaluations);
    EXPECT_EQ(base.best_config, native.best_config);
    EXPECT_EQ(base.best_score, native.best_score);
    EXPECT_GT(base.evaluations, 0u);
    EXPECT_EQ(base.trajectory.size(), base.evaluations);
}

TEST(MassiveSearch, PartitionSearcherDeterministicAndBudgeted) {
    const surface::ConfigSpace space(std::vector<int>(512, 2));
    const auto eval = [](const surface::Config& c) {
        double acc = 0.0;
        for (std::size_t e = 0; e < c.size(); ++e)
            acc += c[e] == static_cast<int>(e % 2) ? 1.0 : 0.0;
        return acc;
    };
    const RandomizedPartitionSearcher searcher;
    util::Rng a(5), b(5);
    const SearchResult ra = searcher.search(space, eval, 300, a);
    const SearchResult rb = searcher.search(space, eval, 300, b);
    EXPECT_EQ(ra.best_config, rb.best_config);
    EXPECT_EQ(ra.best_score, rb.best_score);
    EXPECT_LE(ra.evaluations, 300u);
    EXPECT_EQ(ra.trajectory.size(), ra.evaluations);
    // Partition moves must actually improve on the random seed config.
    util::Rng c(5);
    EXPECT_GE(ra.best_score, eval(random_config(space, c)));
}

// On a separable objective (per-element match against a hidden target)
// the vote searcher must recover most of the target with a budget far
// below one evaluation per element — the regime greedy cannot touch,
// since its first sweep alone costs n evaluations. Full recovery is
// statistically out of reach here by design: one element's signal is a
// 1/1024 sliver of each score while the other elements contribute
// ~14 score units of sampling noise, so ~520 probes support ~75%
// per-element accuracy for *any* probing scheme. The bar is therefore a
// large deterministic gain over the random-config expectation (n/2),
// not near-perfect recovery.
TEST(MassiveSearch, MajorityVoteSolvesSeparableProblemCheaply) {
    constexpr std::size_t kElements = 1024;
    const surface::ConfigSpace space(std::vector<int>(kElements, 2));
    surface::Config target(kElements);
    util::Rng trng(123);
    for (auto& s : target) s = static_cast<int>(trng.uniform_int(0, 1));
    const auto eval = [&](const surface::Config& c) {
        double acc = 0.0;
        for (std::size_t e = 0; e < kElements; ++e)
            if (c[e] == target[e]) acc += 1.0;
        return acc;
    };
    const MajorityVoteSearcher searcher;
    util::Rng rng(9);
    const std::size_t budget = 520;  // ~half an eval per element
    const SearchResult result = searcher.search(space, eval, budget, rng);
    EXPECT_LE(result.evaluations, budget);
    // >= 70% of elements matched: ~13 sigma above the random baseline.
    EXPECT_GE(result.best_score, 0.70 * static_cast<double>(kElements));
}

// Greedy at 2,048 elements exercises the up-front memo reservation and
// the entry cap: the sweep must stay within budget and complete without
// pathological memo growth (the perf_snapshot operator-new gate covers
// the no-allocation side; this covers correctness at scale).
TEST(MassiveSearch, GreedyCoordinateDescentHandlesLargeSpaces) {
    constexpr std::size_t kElements = 2048;
    const surface::ConfigSpace space(std::vector<int>(kElements, 2));
    const auto eval = [](const surface::Config& c) {
        double acc = 0.0;
        for (std::size_t e = 0; e < c.size(); ++e)
            acc += c[e] == 1 ? static_cast<double>(e % 7) : 0.0;
        return acc;
    };
    const GreedyCoordinateDescent searcher;
    util::Rng rng(31);
    const SearchResult result = searcher.search(space, eval, 3000, rng);
    EXPECT_LE(result.evaluations, 3000u);
    EXPECT_GT(result.best_score, 0.0);
    EXPECT_EQ(result.trajectory.size(), result.evaluations);
}

}  // namespace
}  // namespace press::core
