// Tests for the OFDM PHY: numerology, modulation, preamble, frames,
// channel/SNR estimation, MIMO metrics and rate adaptation.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/chanest.hpp"
#include "phy/frame.hpp"
#include "phy/mimo.hpp"
#include "phy/modulation.hpp"
#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"
#include "phy/rate.hpp"
#include "util/contracts.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace press::phy {
namespace {

using util::cd;
using util::CVec;

// ----------------------------------------------------------------- ofdm

TEST(Ofdm, Wifi20Geometry) {
    const OfdmParams p = OfdmParams::wifi20();
    EXPECT_EQ(p.fft_size(), 64u);
    EXPECT_EQ(p.cp_length(), 16u);
    EXPECT_EQ(p.num_used(), 52u);
    EXPECT_NEAR(p.subcarrier_spacing_hz(), 312500.0, 1e-9);
    EXPECT_NEAR(p.symbol_duration_s(), 4e-6, 1e-12);
    EXPECT_EQ(p.used_offset(0), -26);
    EXPECT_EQ(p.used_offset(51), 26);
    // No DC.
    for (std::size_t i = 0; i < p.num_used(); ++i)
        EXPECT_NE(p.used_offset(i), 0);
}

TEST(Ofdm, N210Geometry) {
    const OfdmParams p = OfdmParams::n210_wideband();
    EXPECT_EQ(p.fft_size(), 128u);
    EXPECT_EQ(p.num_used(), 102u);  // the Figure-7 x axis
}

TEST(Ofdm, SubcarrierFrequencies) {
    const OfdmParams p = OfdmParams::wifi20();
    EXPECT_NEAR(p.subcarrier_frequency_hz(0), 2.462e9 - 26 * 312500.0, 1e-3);
    EXPECT_NEAR(p.subcarrier_frequency_hz(51), 2.462e9 + 26 * 312500.0, 1e-3);
    const auto freqs = p.used_frequencies_hz();
    EXPECT_EQ(freqs.size(), 52u);
    for (std::size_t i = 1; i < freqs.size(); ++i)
        EXPECT_GT(freqs[i], freqs[i - 1]);
}

TEST(Ofdm, BinMapping) {
    const OfdmParams p = OfdmParams::wifi20();
    // Negative offsets wrap to the top of the FFT grid.
    EXPECT_EQ(p.fft_bin(0), 64u - 26u);
    EXPECT_EQ(p.fft_bin(26), 1u);  // offset +1
}

TEST(Ofdm, PlaceGatherRoundtrip) {
    const OfdmParams p = OfdmParams::wifi20();
    util::Rng rng(1);
    CVec used(p.num_used());
    for (cd& v : used) v = rng.complex_gaussian(1.0);
    const CVec grid = p.place_on_grid(used);
    EXPECT_EQ(grid.size(), 64u);
    EXPECT_EQ(grid[0], (cd{0, 0}));  // DC unused
    const CVec back = p.gather_from_grid(grid);
    EXPECT_LT(util::max_abs_diff(used, back), 1e-15);
}

TEST(Ofdm, InvalidConstructionsThrow) {
    using CV = util::ContractViolation;
    EXPECT_THROW(OfdmParams(64, 64, 20e6, 2.4e9, {1}), CV);   // CP too long
    EXPECT_THROW(OfdmParams(64, 16, 20e6, 2.4e9, {0}), CV);   // DC used
    EXPECT_THROW(OfdmParams(64, 16, 20e6, 2.4e9, {32}), CV);  // off grid
    EXPECT_THROW(OfdmParams(64, 16, 20e6, 2.4e9, {2, 1}), CV); // not ascending
    EXPECT_THROW(OfdmParams(64, 16, 20e6, 2.4e9, {}), CV);    // empty
}

// ----------------------------------------------------------- modulation

class ModulationRoundtrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundtrip, BitsSurviveMapDemap) {
    const Modulation m = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m) + 10);
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(bits_per_symbol(m)) * 200);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const CVec symbols = modulate(bits, m);
    EXPECT_EQ(symbols.size(), 200u);
    EXPECT_EQ(demodulate(symbols, m), bits);
}

TEST_P(ModulationRoundtrip, UnitAverageEnergy) {
    const Modulation m = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m) + 20);
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(bits_per_symbol(m)) * 20000);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const CVec symbols = modulate(bits, m);
    EXPECT_NEAR(util::mean_power(symbols), 1.0, 0.03);
}

TEST_P(ModulationRoundtrip, RobustToSmallNoise) {
    const Modulation m = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m) + 30);
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(bits_per_symbol(m)) * 500);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    CVec symbols = modulate(bits, m);
    // Perturb by less than half the minimum distance: must still decode.
    const double eps = 0.45 * std::sqrt(min_half_distance_sq(m));
    for (cd& s : symbols) s += cd{eps, 0.0};
    EXPECT_EQ(demodulate(symbols, m), bits);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ModulationRoundtrip,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Modulation, BitsPerSymbol) {
    EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
    EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2);
    EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4);
    EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
}

TEST(Modulation, GrayNeighborsDifferInOneBit) {
    // Walk the 16-QAM I axis: adjacent levels must differ in exactly one
    // bit (Gray property) so near-boundary errors cost a single bit.
    std::vector<std::uint8_t> bits(4, 0);
    for (unsigned v = 0; v + 1 < 4; ++v) {
        // Encode levels v and v+1 through the public API: find bit patterns
        // whose symbols are adjacent on the I axis.
        CVec all;
        std::vector<std::vector<std::uint8_t>> patterns;
        for (unsigned p = 0; p < 16; ++p) {
            std::vector<std::uint8_t> b = {
                static_cast<std::uint8_t>((p >> 3) & 1),
                static_cast<std::uint8_t>((p >> 2) & 1),
                static_cast<std::uint8_t>((p >> 1) & 1),
                static_cast<std::uint8_t>(p & 1)};
            const CVec s = modulate(b, Modulation::kQam16);
            all.push_back(s[0]);
            patterns.push_back(b);
        }
        // For each pair of constellation points adjacent in I with equal Q,
        // count differing bits.
        for (std::size_t i = 0; i < all.size(); ++i) {
            for (std::size_t j = 0; j < all.size(); ++j) {
                if (std::abs(all[i].imag() - all[j].imag()) > 1e-9) continue;
                const double di = all[j].real() - all[i].real();
                if (std::abs(di - 2.0 / std::sqrt(10.0)) > 1e-9) continue;
                int diff = 0;
                for (int b = 0; b < 4; ++b)
                    diff += patterns[i][static_cast<std::size_t>(b)] !=
                            patterns[j][static_cast<std::size_t>(b)];
                EXPECT_EQ(diff, 1);
            }
        }
        break;  // one pass covers every adjacent pair
    }
}

TEST(Modulation, BitCountValidation) {
    EXPECT_THROW(modulate({1, 0, 1}, Modulation::kQpsk),
                 util::ContractViolation);
}

// ------------------------------------------------------------- preamble

TEST(Preamble, PilotsAreBpsk) {
    for (const OfdmParams& p :
         {OfdmParams::wifi20(), OfdmParams::n210_wideband()}) {
        const CVec pilots = ltf_pilots(p);
        EXPECT_EQ(pilots.size(), p.num_used());
        for (const cd& v : pilots)
            EXPECT_NEAR(std::abs(std::abs(v.real()) - 1.0) + std::abs(v.imag()),
                        0.0, 1e-12);
    }
}

TEST(Preamble, Dot11SequenceUsedForWifi20) {
    const CVec pilots = ltf_pilots(OfdmParams::wifi20());
    // Spot-check the standard L-LTF: first value (subcarrier -26) is +1,
    // third is -1.
    EXPECT_NEAR(pilots[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(pilots[2].real(), -1.0, 1e-12);
}

TEST(Preamble, Deterministic) {
    const CVec a = ltf_pilots(OfdmParams::n210_wideband());
    const CVec b = ltf_pilots(OfdmParams::n210_wideband());
    EXPECT_LT(util::max_abs_diff(a, b), 1e-15);
}

TEST(Preamble, TimeSymbolShape) {
    const OfdmParams p = OfdmParams::wifi20();
    const CVec symbol = ltf_time_symbol(p);
    ASSERT_EQ(symbol.size(), p.cp_length() + p.fft_size());
    // CP is a copy of the body tail.
    for (std::size_t i = 0; i < p.cp_length(); ++i)
        EXPECT_NEAR(std::abs(symbol[i] -
                             symbol[p.fft_size() + i]),
                    0.0, 1e-12);
    // Unit average power over the body.
    CVec body(symbol.begin() + 16, symbol.end());
    EXPECT_NEAR(util::mean_power(body), 1.0, 1e-9);
}

// ---------------------------------------------------------------- frame

TEST(Frame, LengthFormula) {
    const OfdmParams p = OfdmParams::wifi20();
    FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 6;
    EXPECT_EQ(frame_length_samples(p, spec), 10u * 80u);
}

TEST(Frame, PerfectChannelRoundtrip) {
    const OfdmParams p = OfdmParams::wifi20();
    FrameSpec spec;
    spec.num_ltf = 2;
    spec.num_data = 4;
    spec.modulation = Modulation::kQam16;
    util::Rng rng(3);
    const TxFrame tx = build_frame(p, spec, rng);
    const RxFrame rx = parse_frame(p, spec, tx.samples);
    // Channel estimate is exactly 1 on every subcarrier.
    for (const CVec& h : rx.ltf_estimates)
        for (const cd& v : h) EXPECT_NEAR(std::abs(v - cd{1, 0}), 0.0, 1e-9);
    // Payload decodes without error, EVM ~ 0.
    EXPECT_EQ(rx.payload_bits, tx.payload_bits);
    EXPECT_LT(evm_rms(rx.equalized_data, spec.modulation), 1e-9);
    EXPECT_NEAR(rx.cfo_estimate_hz, 0.0, 1e-6);
}

TEST(Frame, KnownFlatChannelGain) {
    const OfdmParams p = OfdmParams::wifi20();
    FrameSpec spec;
    spec.num_ltf = 2;
    spec.num_data = 1;
    util::Rng rng(4);
    const TxFrame tx = build_frame(p, spec, rng);
    const cd g{0.5, 0.25};
    const CVec faded = util::scale(tx.samples, g);
    const RxFrame rx = parse_frame(p, spec, faded);
    for (const CVec& h : rx.ltf_estimates)
        for (const cd& v : h) EXPECT_NEAR(std::abs(v - g), 0.0, 1e-9);
    EXPECT_EQ(rx.payload_bits, tx.payload_bits);
}

TEST(Frame, CfoEstimationAndCorrection) {
    const OfdmParams p = OfdmParams::wifi20();
    FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 4;
    util::Rng rng(5);
    const TxFrame tx = build_frame(p, spec, rng);
    const double cfo = 1500.0;  // Hz
    CVec rotated = tx.samples;
    for (std::size_t n = 0; n < rotated.size(); ++n)
        rotated[n] *= std::polar(
            1.0, util::kTwoPi * cfo * static_cast<double>(n) /
                     p.sample_rate_hz());
    const RxFrame rx = parse_frame(p, spec, rotated, /*correct_cfo=*/true);
    EXPECT_NEAR(rx.cfo_estimate_hz, cfo, 10.0);
    EXPECT_EQ(rx.payload_bits, tx.payload_bits);
}

TEST(Frame, UncorrectedLargeCfoBreaksPayload) {
    // Failure injection: a large CFO without correction must corrupt the
    // payload (the parser's estimate is still produced).
    const OfdmParams p = OfdmParams::wifi20();
    FrameSpec spec;
    spec.num_ltf = 2;
    spec.num_data = 8;
    spec.modulation = Modulation::kQam64;
    util::Rng rng(6);
    const TxFrame tx = build_frame(p, spec, rng);
    const double cfo = 6000.0;
    CVec rotated = tx.samples;
    for (std::size_t n = 0; n < rotated.size(); ++n)
        rotated[n] *= std::polar(
            1.0, util::kTwoPi * cfo * static_cast<double>(n) /
                     p.sample_rate_hz());
    const RxFrame rx = parse_frame(p, spec, rotated, /*correct_cfo=*/false);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < tx.payload_bits.size(); ++i)
        errors += tx.payload_bits[i] != rx.payload_bits[i];
    EXPECT_GT(errors, tx.payload_bits.size() / 20);
}

TEST(Frame, ShortBufferThrows) {
    const OfdmParams p = OfdmParams::wifi20();
    FrameSpec spec;
    EXPECT_THROW(parse_frame(p, spec, CVec(10)), util::ContractViolation);
}

// -------------------------------------------------------------- chanest

TEST(ChanEst, CombineRecoversTruthAndNoise) {
    util::Rng rng(7);
    const std::size_t n = 52;
    CVec truth(n);
    for (cd& v : truth) v = rng.complex_gaussian(1.0);
    const double noise_var = 0.01;
    std::vector<CVec> raw;
    for (int r = 0; r < 400; ++r) {
        CVec est = truth;
        for (cd& v : est) v += rng.complex_gaussian(noise_var);
        raw.push_back(std::move(est));
    }
    const ChannelEstimate ce = combine_ltf_estimates(raw);
    EXPECT_EQ(ce.num_repetitions, 400u);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(std::abs(ce.h[k] - truth[k]), 0.0, 0.02);
        EXPECT_NEAR(ce.noise_var[k], noise_var, noise_var * 0.6);
    }
}

TEST(ChanEst, SnrClamping) {
    ChannelEstimate ce;
    ce.h = {cd{1, 0}, cd{1, 0}, cd{0, 0}};
    ce.noise_var = {1e-12, 1.0, 0.5};
    const auto snr = ce.snr_db(60.0, 0.0);
    EXPECT_DOUBLE_EQ(snr[0], 60.0);  // capped
    EXPECT_DOUBLE_EQ(snr[1], 0.0);   // 0 dB exactly at floor
    EXPECT_DOUBLE_EQ(snr[2], 0.0);   // dead subcarrier floored
}

TEST(ChanEst, CombineNeedsTwoReps) {
    EXPECT_THROW(combine_ltf_estimates({CVec(4)}), util::ContractViolation);
}

TEST(ChanEst, FindNull) {
    std::vector<double> flat(52, 30.0);
    EXPECT_FALSE(find_null(flat).has_value());
    std::vector<double> dipped = flat;
    dipped[17] = 18.0;  // 12 dB below the median
    const auto info = find_null(dipped, 5.0);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->subcarrier, 17u);
    EXPECT_NEAR(info->depth_db, 12.0, 1e-9);
    // A 3 dB dip does not qualify at the default threshold.
    std::vector<double> shallow = flat;
    shallow[9] = 27.0;
    EXPECT_FALSE(find_null(shallow, 5.0).has_value());
}

// ----------------------------------------------------------------- mimo

TEST(Mimo, AssembleShapes) {
    const std::size_t nsc = 8;
    std::vector<std::vector<CVec>> columns(2, std::vector<CVec>(2));
    for (auto& col : columns)
        for (auto& v : col) v.assign(nsc, cd{1, 0});
    columns[1][0].assign(nsc, cd{0, 1});  // TX1 -> RX0
    const MimoChannelEstimate est = assemble_mimo(columns);
    EXPECT_EQ(est.num_subcarriers(), nsc);
    EXPECT_EQ(est.num_tx(), 2u);
    EXPECT_EQ(est.num_rx(), 2u);
    EXPECT_EQ(est.h[0].at(0, 1), (cd{0, 1}));
}

TEST(Mimo, ConditionNumberExtremes) {
    // Identity channel: perfectly conditioned (0 dB).
    MimoChannelEstimate ident;
    ident.h.push_back(util::Matrix::identity(2));
    EXPECT_NEAR(condition_numbers_db(ident)[0], 0.0, 1e-9);
    // Nearly rank-1 channel: badly conditioned.
    util::Matrix r1(2, 2);
    r1.at(0, 0) = {1, 0};
    r1.at(0, 1) = {1, 0};
    r1.at(1, 0) = {1, 0};
    r1.at(1, 1) = {1.001, 0};
    MimoChannelEstimate bad;
    bad.h.push_back(r1);
    EXPECT_GT(condition_numbers_db(bad)[0], 30.0);
}

TEST(Mimo, CapacityBehaviour) {
    const util::Matrix eye = util::Matrix::identity(2);
    const double c10 = mimo_capacity_bps_hz(eye, util::db_to_linear(10.0));
    const double c20 = mimo_capacity_bps_hz(eye, util::db_to_linear(20.0));
    EXPECT_GT(c20, c10);
    // At high SNR an orthogonal 2x2 gains ~2 bits per 3 dB.
    EXPECT_NEAR(c20 - c10, 2.0 * 10.0 / 3.0 * std::log2(2.0), 0.7);
    // A rank-1 channel caps one stream.
    util::Matrix r1(2, 2);
    r1.at(0, 0) = {1, 0};
    r1.at(0, 1) = {1, 0};
    r1.at(1, 0) = {1, 0};
    r1.at(1, 1) = {1, 0};
    EXPECT_LT(mimo_capacity_bps_hz(r1, util::db_to_linear(20.0)),
              mimo_capacity_bps_hz(eye, util::db_to_linear(20.0)));
}

TEST(Mimo, RaggedInputThrows) {
    std::vector<std::vector<CVec>> columns(2);
    columns[0] = {CVec(4), CVec(4)};
    columns[1] = {CVec(4)};
    EXPECT_THROW(assemble_mimo(columns), util::ContractViolation);
}

// ----------------------------------------------------------------- rate

TEST(Rate, EffectiveSnrOfFlatChannel) {
    const std::vector<double> flat(52, 17.0);
    EXPECT_NEAR(effective_snr_db(flat), 17.0, 0.05);
}

TEST(Rate, EffectiveSnrPenalizesNulls) {
    std::vector<double> dipped(52, 25.0);
    dipped[10] = -5.0;
    EXPECT_LT(effective_snr_db(dipped), 25.0);
    EXPECT_GT(effective_snr_db(dipped), 15.0);
}

class McsThresholds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McsThresholds, SelectionRespectsThreshold) {
    const Mcs& m = mcs_table()[GetParam()];
    const auto at = select_mcs(m.min_snr_db + 0.1);
    ASSERT_TRUE(at.has_value());
    EXPECT_GE(at->rate_mbps, m.rate_mbps);
    const auto below = select_mcs(m.min_snr_db - 0.1);
    if (below) {
        EXPECT_LT(below->rate_mbps, m.rate_mbps);
    }
}

INSTANTIATE_TEST_SUITE_P(AllMcs, McsThresholds,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Rate, ThroughputMonotoneInSnr) {
    double prev = -1.0;
    for (double snr = 0.0; snr <= 30.0; snr += 1.0) {
        const double t = expected_throughput_mbps(std::vector<double>(52, snr));
        EXPECT_GE(t, prev);
        prev = t;
    }
    EXPECT_DOUBLE_EQ(expected_throughput_mbps(std::vector<double>(52, 0.0)),
                     0.0);
    EXPECT_DOUBLE_EQ(expected_throughput_mbps(std::vector<double>(52, 40.0)),
                     54.0);
}

}  // namespace
}  // namespace press::phy
