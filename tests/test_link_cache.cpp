// Equivalence and invalidation tests for the factored channel cache: a
// cached response must match the direct path-trace synthesis to within
// 1e-12 relative error (it is in fact built to be bit-identical) across
// random rooms, obstacle sets, every element load combination, endpoint
// moves and injected faults.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <vector>

#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "em/channel.hpp"
#include "fault/fault.hpp"
#include "util/contracts.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

namespace press::core {
namespace {

/// Max elementwise |a - b| over max |b| (0-safe).
double relative_error(const util::CVec& a, const util::CVec& b) {
    EXPECT_EQ(a.size(), b.size());
    double num = 0.0, den = 0.0;
    for (std::size_t k = 0; k < a.size() && k < b.size(); ++k) {
        num = std::max(num, std::abs(a[k] - b[k]));
        den = std::max(den, std::abs(b[k]));
    }
    return den == 0.0 ? num : num / den;
}

/// The reference: re-trace every path and synthesize the CFR directly.
util::CVec direct_response(const System& system, std::size_t link_id) {
    const sdr::Medium& medium = system.medium();
    return em::frequency_response(
        medium.resolve_paths(system.link(link_id)),
        medium.ofdm().used_frequencies_hz());
}

TEST(LinkCache, MatchesDirectSynthesisAcrossRooms) {
    for (const std::uint64_t seed : {1ull, 5ull, 9ull, 23ull}) {
        for (const bool los : {false, true}) {
            LinkScenario scenario = make_link_scenario(seed, los);
            const util::CVec cached =
                scenario.system.channel_response(scenario.link_id);
            const util::CVec direct =
                direct_response(scenario.system, scenario.link_id);
            EXPECT_LE(relative_error(cached, direct), 1e-12)
                << "seed=" << seed << " los=" << los;
        }
    }
}

TEST(LinkCache, MatchesDirectSynthesisForEveryConfiguration) {
    LinkScenario scenario = make_link_scenario(3, false);
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    for (std::uint64_t i = 0; i < space.size(); ++i) {
        scenario.system.apply(scenario.array_id, space.at(i));
        const util::CVec cached =
            scenario.system.channel_response(scenario.link_id);
        const util::CVec direct =
            direct_response(scenario.system, scenario.link_id);
        EXPECT_LE(relative_error(cached, direct), 1e-12) << "config " << i;
    }
    // One basis build serves the whole sweep: applying configurations
    // must not invalidate.
    EXPECT_EQ(scenario.system.cache_stats().misses, 1u);
    EXPECT_EQ(scenario.system.cache_stats().hits, space.size() - 1);
}

TEST(LinkCache, MatchesDirectSynthesisUnderInjectedFaults) {
    LinkScenario scenario = make_link_scenario(11, false);
    // Warm the cache, then damage the hardware: dead and drifted elements
    // rewrite loads, which must force a rebuild.
    (void)scenario.system.channel_response(scenario.link_id);
    util::Rng frng(77);
    scenario.system.inject_faults(
        scenario.array_id,
        fault::FaultModel::sample(scenario.system.medium()
                                      .array(scenario.array_id)
                                      .config_space(),
                                  0.67, frng));
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    util::Rng pick(5);
    for (int trial = 0; trial < 16; ++trial) {
        surface::Config c(space.num_elements());
        for (std::size_t e = 0; e < c.size(); ++e)
            c[e] = static_cast<int>(
                pick.uniform_int(0, space.radices()[e] - 1));
        scenario.system.apply(scenario.array_id, c);
        const util::CVec cached =
            scenario.system.channel_response(scenario.link_id);
        const util::CVec direct =
            direct_response(scenario.system, scenario.link_id);
        EXPECT_LE(relative_error(cached, direct), 1e-12)
            << "trial " << trial;
    }
}

TEST(LinkCache, InvalidatesOnEnvironmentMutation) {
    LinkScenario scenario = make_link_scenario(7, false);
    (void)scenario.system.channel_response(scenario.link_id);
    const auto misses_before = scenario.system.cache_stats().misses;
    // Drop a new metal cabinet into the room: the path set changes.
    em::Obstacle cabinet;
    cabinet.box = {{3.6, 2.6, 0.0}, {4.4, 3.4, 2.0}};
    cabinet.attenuation_db = 30.0;
    scenario.system.medium().environment().add_obstacle(cabinet);
    const util::CVec cached =
        scenario.system.channel_response(scenario.link_id);
    EXPECT_EQ(scenario.system.cache_stats().misses, misses_before + 1);
    EXPECT_LE(relative_error(
                  cached, direct_response(scenario.system, scenario.link_id)),
              1e-12);
}

TEST(LinkCache, InvalidatesOnEndpointMove) {
    LinkScenario scenario = make_link_scenario(7, false);
    (void)scenario.system.channel_response(scenario.link_id);
    const auto misses_before = scenario.system.cache_stats().misses;
    scenario.system.link(scenario.link_id).rx.position.x += 0.35;
    const util::CVec cached =
        scenario.system.channel_response(scenario.link_id);
    EXPECT_EQ(scenario.system.cache_stats().misses, misses_before + 1);
    EXPECT_LE(relative_error(
                  cached, direct_response(scenario.system, scenario.link_id)),
              1e-12);
}

TEST(LinkCache, ResponseWithOverridesOneArray) {
    LinkScenario scenario = make_link_scenario(13, false);
    System& system = scenario.system;
    const sdr::Medium& medium = system.medium();
    const sdr::Link& link = system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    // Score hypothetical candidates without actuating anything, then
    // check each against a real apply + direct synthesis.
    util::Rng pick(9);
    for (int trial = 0; trial < 8; ++trial) {
        surface::Config c(space.num_elements());
        for (std::size_t e = 0; e < c.size(); ++e)
            c[e] = static_cast<int>(
                pick.uniform_int(0, space.radices()[e] - 1));
        const util::CVec hypothetical = cache.response_with(
            medium, scenario.link_id, link, scenario.array_id, c);
        system.apply(scenario.array_id, c);
        EXPECT_LE(relative_error(
                      hypothetical,
                      direct_response(system, scenario.link_id)),
                  1e-12);
    }
    // A stale entry must refuse the lock-free read path.
    system.medium().environment().set_max_reflection_order(2);
    EXPECT_THROW(cache.response_with(medium, scenario.link_id, link,
                                     scenario.array_id, space.at(0)),
                 util::ContractViolation);
}

TEST(LinkCache, ExplicitInvalidateForcesRebuild) {
    LinkScenario scenario = make_link_scenario(2, true);
    (void)scenario.system.channel_response(scenario.link_id);
    (void)scenario.system.channel_response(scenario.link_id);
    EXPECT_EQ(scenario.system.cache_stats().misses, 1u);
    EXPECT_EQ(scenario.system.cache_stats().hits, 1u);
    scenario.system.invalidate_cache();
    (void)scenario.system.channel_response(scenario.link_id);
    EXPECT_EQ(scenario.system.cache_stats().misses, 2u);
}

TEST(LinkCache, MoveZeroesTheSourceCounters) {
    // Regression: the move operations used to read the source's atomics
    // without clearing them, so a moved-from cache that was reused
    // double-reported the transferred hits/misses in telemetry.
    LinkCache cache;
    cache.note_batch_hits(5);
    cache.invalidate();
    LinkCache moved(std::move(cache));
    EXPECT_EQ(moved.stats().hits, 5u);
    EXPECT_EQ(moved.stats().invalidations, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().invalidations, 0u);

    LinkCache assigned;
    assigned.note_batch_hits(2);  // overwritten by the assignment
    assigned = std::move(moved);
    EXPECT_EQ(assigned.stats().hits, 5u);
    EXPECT_EQ(assigned.stats().invalidations, 1u);
    EXPECT_EQ(moved.stats().hits, 0u);
    EXPECT_EQ(moved.stats().invalidations, 0u);
}

TEST(LinkCache, ResponseIntoMatchesResponseWithBitwise) {
    LinkScenario scenario = make_link_scenario(13, false);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    util::kernels::SplitVec scratch;
    util::Rng pick(21);
    for (int trial = 0; trial < 12; ++trial) {
        surface::Config c(space.num_elements());
        for (std::size_t e = 0; e < c.size(); ++e)
            c[e] = static_cast<int>(
                pick.uniform_int(0, space.radices()[e] - 1));
        const util::CVec aos = cache.response_with(
            medium, scenario.link_id, link, scenario.array_id, c);
        cache.response_into(medium, scenario.link_id, link,
                            scenario.array_id, c, scratch);
        ASSERT_EQ(scratch.size(), aos.size());
        for (std::size_t k = 0; k < aos.size(); ++k) {
            EXPECT_EQ(aos[k].real(), scratch.re[k]) << "subcarrier " << k;
            EXPECT_EQ(aos[k].imag(), scratch.im[k]) << "subcarrier " << k;
        }
    }
}

TEST(LinkCache, CoordinateDeltaPathMatchesRecomputeAndDirect) {
    LinkScenario scenario = make_link_scenario(19, false);
    System& system = scenario.system;
    const sdr::Medium& medium = system.medium();
    const sdr::Link& link = system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    const util::kernels::Dispatch d = util::kernels::active();

    util::Rng pick(3);
    surface::Config base(space.num_elements());
    for (std::size_t e = 0; e < base.size(); ++e)
        base[e] = static_cast<int>(
            pick.uniform_int(0, space.radices()[e] - 1));

    util::kernels::SplitVec cached_base, fresh, candidate;
    for (std::size_t e = 0; e < space.num_elements(); ++e) {
        cache.response_base_into(medium, scenario.link_id, link,
                                 scenario.array_id, base, e, cached_base);
        // The swept element's own state contributes nothing to the base.
        surface::Config jitter = base;
        jitter[e] = (base[e] + 1) % space.radices()[e];
        cache.response_base_into(medium, scenario.link_id, link,
                                 scenario.array_id, jitter, e, fresh);
        ASSERT_EQ(fresh.size(), cached_base.size());
        for (std::size_t k = 0; k < fresh.size(); ++k) {
            EXPECT_EQ(fresh.re[k], cached_base.re[k]);
            EXPECT_EQ(fresh.im[k], cached_base.im[k]);
        }

        for (int s = 0; s < space.radices()[e]; ++s) {
            // Delta path: copy the coordinate's cached base, add the row.
            candidate.resize(cached_base.size());
            util::kernels::copy(d, cached_base.re.data(),
                                cached_base.im.data(), candidate.re.data(),
                                candidate.im.data(), cached_base.size());
            cache.accumulate_element_row(scenario.link_id,
                                         scenario.array_id, e, s,
                                         candidate);
            // Recompute path: rebuild the base, add the same row.
            cache.response_base_into(medium, scenario.link_id, link,
                                     scenario.array_id, base, e, fresh);
            cache.accumulate_element_row(scenario.link_id,
                                         scenario.array_id, e, s, fresh);
            for (std::size_t k = 0; k < candidate.size(); ++k) {
                EXPECT_EQ(candidate.re[k], fresh.re[k]) << "state " << s;
                EXPECT_EQ(candidate.im[k], fresh.im[k]) << "state " << s;
            }
            // And both are the candidate's response (up to the swept
            // row's summation position — fp association, not value).
            surface::Config c = base;
            c[e] = s;
            const util::CVec full = cache.response_with(
                medium, scenario.link_id, link, scenario.array_id, c);
            util::CVec delta_aos(candidate.size());
            util::kernels::interleave(candidate.re.data(),
                                      candidate.im.data(),
                                      delta_aos.data(), candidate.size());
            EXPECT_LE(relative_error(delta_aos, full), 1e-12)
                << "element " << e << " state " << s;
        }
    }
}

TEST(LinkCache, SoundingMatchesUncachedMedium) {
    // The cached facade and the raw Medium must agree on the noisy
    // estimate too, given identical rng streams (same H, same draws).
    LinkScenario scenario = make_link_scenario(17, false);
    util::Rng rng_a(31), rng_b(31);
    const auto est_cached =
        scenario.system.sound(scenario.link_id, rng_a);
    const auto est_direct = scenario.system.medium().sound(
        scenario.system.link(scenario.link_id),
        scenario.system.sounding_repeats(), rng_b);
    ASSERT_EQ(est_cached.h.size(), est_direct.h.size());
    for (std::size_t k = 0; k < est_cached.h.size(); ++k)
        EXPECT_EQ(est_cached.h[k], est_direct.h[k]) << "subcarrier " << k;
}

}  // namespace
}  // namespace press::core
