// Tests for the core facade: reporting, System, scenario builders and the
// experiment runners.
#include <gtest/gtest.h>

#include <sstream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace press::core {
namespace {

// --------------------------------------------------------------- report

TEST(Report, TableAlignsAndValidates) {
    std::ostringstream os;
    print_table(os, {"a", "long-header"}, {{"1", "2"}, {"333", "4"}});
    const std::string text = os.str();
    EXPECT_NE(text.find("long-header"), std::string::npos);
    EXPECT_NE(text.find("333"), std::string::npos);
    std::ostringstream bad;
    EXPECT_THROW(print_table(bad, {"a"}, {{"1", "2"}}),
                 util::ContractViolation);
}

TEST(Report, Fmt) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(-1.0, 0), "-1");
}

TEST(Report, SeriesAndDistributions) {
    std::ostringstream os;
    print_series(os, "s", {1.0, 2.0}, {3.0, 4.0});
    EXPECT_NE(os.str().find("s 1.0000 3.0000"), std::string::npos);
    std::ostringstream cdf;
    print_cdf(cdf, "d", {1.0, 2.0, 3.0}, 5);
    EXPECT_NE(cdf.str().find("d "), std::string::npos);
    EXPECT_THROW(print_series(os, "s", {1.0}, {1.0, 2.0}),
                 util::ContractViolation);
}

TEST(Report, Sparkline) {
    const std::string line = sparkline({0.0, 1.0, 2.0, 3.0});
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(sparkline({}), "");
    // Flat input renders the lowest level everywhere, without dividing by
    // zero.
    EXPECT_FALSE(sparkline({5.0, 5.0, 5.0}).empty());
}

// --------------------------------------------------------------- system

TEST(System, LinksAndObservation) {
    LinkScenario scenario = make_link_scenario(1, false);
    EXPECT_EQ(scenario.system.num_links(), 1u);
    util::Rng rng(2);
    const control::Observation obs = scenario.system.observe(rng);
    ASSERT_EQ(obs.link_snr_db.size(), 1u);
    EXPECT_EQ(obs.link_snr_db[0].size(), 52u);
    EXPECT_THROW(scenario.system.link(5), util::ContractViolation);
}

TEST(System, SoundingRepeatsValidation) {
    LinkScenario scenario = make_link_scenario(1, false);
    EXPECT_THROW(scenario.system.set_sounding_repeats(1),
                 util::ContractViolation);
    scenario.system.set_sounding_repeats(8);
    EXPECT_EQ(scenario.system.sounding_repeats(), 8u);
}

TEST(System, OptimizeImprovesObjective) {
    LinkScenario scenario = make_link_scenario(3, false);
    util::Rng rng(4);
    const control::MinSnrObjective objective(0);
    const double before =
        objective.score(scenario.system.observe(rng));
    const auto outcome = scenario.system.optimize(
        scenario.array_id, objective, control::GreedyCoordinateDescent(),
        control::ControlPlaneModel::fast(), 0.25, rng);
    const double after = objective.score(scenario.system.observe(rng));
    // best_score is one noisy measurement of the winning configuration
    // (the memoizing greedy never re-measures a configuration), so compare
    // against `before` with the same estimator-noise allowance as below.
    EXPECT_GT(outcome.search.best_score, before - 6.0);
    // The optimized configuration should hold up on a fresh measurement
    // (within estimator noise).
    EXPECT_GT(after, before - 6.0);
}

// ------------------------------------------------------------ scenarios

TEST(Scenarios, DeterministicFromSeed) {
    LinkScenario a = make_link_scenario(42, false);
    LinkScenario b = make_link_scenario(42, false);
    const auto snr_a = a.system.true_snr_db(a.link_id);
    const auto snr_b = b.system.true_snr_db(b.link_id);
    for (std::size_t k = 0; k < snr_a.size(); ++k)
        EXPECT_DOUBLE_EQ(snr_a[k], snr_b[k]);
}

TEST(Scenarios, DifferentSeedsDiffer) {
    LinkScenario a = make_link_scenario(42, false);
    LinkScenario b = make_link_scenario(43, false);
    const auto snr_a = a.system.true_snr_db(a.link_id);
    const auto snr_b = b.system.true_snr_db(b.link_id);
    double diff = 0.0;
    for (std::size_t k = 0; k < snr_a.size(); ++k)
        diff += std::abs(snr_a[k] - snr_b[k]);
    EXPECT_GT(diff, 1.0);
}

TEST(Scenarios, BlockerCreatesFrequencySelectivity) {
    // The blocked channel must be both weaker and more frequency-selective
    // than the line-of-sight one (the paper: "this channel demonstrates
    // much more frequency selectivity than the line-of-sight setup").
    LinkScenario los = make_link_scenario(5, true);
    LinkScenario nlos = make_link_scenario(5, false);
    const auto snr_los = los.system.true_snr_db(los.link_id);
    const auto snr_nlos = nlos.system.true_snr_db(nlos.link_id);
    EXPECT_GT(util::mean(snr_los), util::mean(snr_nlos) + 5.0);
    const double sel_los =
        util::max_value(snr_los) - util::min_value(snr_los);
    const double sel_nlos =
        util::max_value(snr_nlos) - util::min_value(snr_nlos);
    EXPECT_GT(sel_nlos, sel_los);
}

TEST(Scenarios, ElementsInsideStudyRegion) {
    const StudyParams p;
    LinkScenario scenario = make_link_scenario(6, false);
    const auto& array = scenario.system.medium().array(scenario.array_id);
    EXPECT_EQ(array.size(), 3u);
    for (const auto& e : array.elements()) {
        EXPECT_GT(e.position().x, 0.0);
        EXPECT_LT(e.position().x, p.room_x);
        EXPECT_GT(e.position().y, 0.0);
        EXPECT_LT(e.position().y, p.room_y / 2.0);  // offset side
    }
}

TEST(Scenarios, ActiveScenarioHasActiveStates) {
    LinkScenario scenario = make_active_link_scenario(7, true, 20.0);
    const auto& array = scenario.system.medium().array(scenario.array_id);
    for (const auto& e : array.elements())
        EXPECT_TRUE(e.has_active_states());
}

TEST(Scenarios, Fig7ScenarioShape) {
    LinkScenario scenario = make_fig7_link_scenario(8);
    EXPECT_EQ(scenario.system.medium().ofdm().num_used(), 102u);
    const auto& array = scenario.system.medium().array(scenario.array_id);
    EXPECT_EQ(array.size(), 2u);
    EXPECT_EQ(array.config_space().size(), 16u);  // 4 phases, no absorber
    for (const auto& e : array.elements())
        for (const auto& l : e.loads()) EXPECT_FALSE(l.is_off());
}

TEST(Scenarios, HarmonizationScenarioShape) {
    HarmonizationScenario scenario = make_harmonization_scenario(9);
    EXPECT_EQ(scenario.system.num_links(), 4u);
    EXPECT_EQ(scenario.system.medium().ofdm().num_used(), 102u);
}

TEST(Scenarios, MimoScenarioShape) {
    MimoScenario scenario = make_mimo_scenario(10);
    EXPECT_EQ(scenario.tx_antennas.size(), 2u);
    EXPECT_EQ(scenario.rx_antennas.size(), 2u);
    EXPECT_EQ(scenario.profile.num_antennas, 2);
    // Elements co-linear with the TX pair: same x and z.
    const auto& array = scenario.medium.array(scenario.array_id);
    for (const auto& e : array.elements()) {
        EXPECT_NEAR(e.position().x, scenario.tx_antennas[0].position.x,
                    1e-12);
        EXPECT_NEAR(e.position().z, scenario.tx_antennas[0].position.z,
                    1e-12);
    }
}

// ----------------------------------------------------------- experiments

TEST(Experiments, SweepShapes) {
    LinkScenario scenario = make_link_scenario(11, false);
    util::Rng rng(12);
    const ConfigSweep sweep = sweep_configurations(scenario, 3, rng);
    EXPECT_EQ(sweep.mean_snr_db.size(), 64u);
    EXPECT_EQ(sweep.mean_snr_db[0].size(), 52u);
    EXPECT_EQ(sweep.snr_per_trial_db.size(), 3u);
    EXPECT_EQ(sweep.min_snr_per_trial_db.size(), 3u);
    EXPECT_EQ(sweep.config_labels.size(), 64u);
    EXPECT_EQ(sweep.config_labels[0], "(0, 0, 0)");
}

TEST(Experiments, ExtremePairConsistent) {
    LinkScenario scenario = make_link_scenario(13, false);
    util::Rng rng(14);
    const ConfigSweep sweep = sweep_configurations(scenario, 3, rng);
    const ExtremePair pair = find_extreme_pair(sweep);
    EXPECT_NE(pair.config_a, pair.config_b);
    EXPECT_LT(pair.subcarrier, 52u);
    EXPECT_NEAR(std::abs(sweep.mean_snr_db[pair.config_a][pair.subcarrier] -
                         sweep.mean_snr_db[pair.config_b][pair.subcarrier]),
                pair.max_diff_db, 1e-12);
    EXPECT_DOUBLE_EQ(max_mean_subcarrier_swing_db(sweep), pair.max_diff_db);
}

TEST(Experiments, NullMovementsBounded) {
    LinkScenario scenario = make_link_scenario(15, false);
    util::Rng rng(16);
    const ConfigSweep sweep = sweep_configurations(scenario, 3, rng);
    for (double m : null_movements(sweep)) {
        EXPECT_GE(m, 0.0);
        EXPECT_LT(m, 52.0);
    }
    for (double m : null_movements_for_trial(sweep, 0)) {
        EXPECT_GE(m, 0.0);
        EXPECT_LT(m, 52.0);
    }
    EXPECT_THROW(null_movements_for_trial(sweep, 99),
                 util::ContractViolation);
}

TEST(Experiments, MinSnrChangesCount) {
    LinkScenario scenario = make_link_scenario(17, false);
    util::Rng rng(18);
    const ConfigSweep sweep = sweep_configurations(scenario, 2, rng);
    // 64 choose 2 unordered pairs.
    EXPECT_EQ(min_snr_changes(sweep).size(), 64u * 63u / 2u);
}

TEST(Experiments, MimoSweepFindsGap) {
    MimoScenario scenario = make_mimo_scenario(19);
    util::Rng rng(20);
    const MimoSweep sweep = sweep_mimo(scenario, 10, rng);
    EXPECT_EQ(sweep.condition_db.size(), 64u);
    EXPECT_EQ(sweep.condition_db[0].size(), 52u);
    EXPECT_GT(sweep.median_gap_db, 0.0);
    EXPECT_NE(sweep.best_config, sweep.worst_config);
    for (const auto& cond : sweep.condition_db)
        for (double c : cond) EXPECT_GE(c, 0.0);
}

TEST(Experiments, TrueSwingNonNegative) {
    LinkScenario scenario = make_link_scenario(21, true);
    EXPECT_GE(max_true_swing_db(scenario), 0.0);
}

}  // namespace
}  // namespace press::core
