// Tests for the SDR layer: radio profiles, the Medium measurement path
// (link budgets, sounding, caching) and the time-domain chain, including
// the frequency-domain / time-domain cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "sdr/medium.hpp"
#include "sdr/profile.hpp"
#include "sdr/timedomain.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace press::sdr {
namespace {

using util::cd;
using util::CVec;

Medium free_space_medium() {
    return Medium(em::Environment{}, phy::OfdmParams::wifi20());
}

Link simple_link(double d = 10.0) {
    Link link;
    link.tx = {{0, 0, 0}, em::Antenna::omni(0.0), {}};
    link.rx = {{d, 0, 0}, em::Antenna::omni(0.0), {}};
    link.profile = RadioProfile::warp_v3();
    return link;
}

TEST(Profile, PresetsAreSane) {
    for (const RadioProfile& p :
         {RadioProfile::warp_v3(), RadioProfile::usrp_n210(),
          RadioProfile::usrp_x310()}) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.noise_figure_db, 0.0);
        EXPECT_GE(p.num_antennas, 1);
        EXPECT_GE(p.max_cfo_hz, 0.0);
    }
    EXPECT_EQ(RadioProfile::usrp_x310().num_antennas, 2);
}

TEST(Medium, TrueSnrMatchesManualBudget) {
    Medium medium = free_space_medium();
    const Link link = simple_link(10.0);
    const auto snr = medium.true_snr_db(link);
    ASSERT_EQ(snr.size(), 52u);
    // Manual budget: Friis |H|^2 x per-subcarrier power over thermal noise.
    const double lambda = util::wavelength(2.462e9);
    const double h2 =
        std::pow(lambda / (4.0 * util::kPi * 10.0), 2.0);
    const double p_sc =
        util::dbm_to_watt(link.profile.tx_power_dbm) / 52.0;
    const double n_sc =
        util::thermal_noise_watt(312500.0, link.profile.noise_figure_db);
    const double expected = util::linear_to_db(p_sc * h2 / n_sc);
    // Free space: every subcarrier identical (tiny wavelength dispersion).
    for (double s : snr) EXPECT_NEAR(s, expected, 0.01);
}

TEST(Medium, SoundEstimatesTrackTruth) {
    Medium medium = free_space_medium();
    const Link link = simple_link(10.0);
    util::Rng rng(5);
    const auto est = medium.sound(link, 64, rng);
    const CVec h = medium.frequency_response(link);
    for (std::size_t k = 0; k < h.size(); ++k)
        EXPECT_NEAR(std::abs(est.h[k]), std::abs(h[k]),
                    0.25 * std::abs(h[k]));
    // Measured SNR near true SNR (generous statistical tolerance).
    const auto true_snr = medium.true_snr_db(link);
    const auto meas_snr = est.snr_db();
    EXPECT_NEAR(util::mean(meas_snr), util::mean(true_snr), 3.0);
}

TEST(Medium, EstimateNoiseVarianceFormula) {
    Medium medium = free_space_medium();
    const Link link = simple_link();
    const double p_sc =
        util::dbm_to_watt(link.profile.tx_power_dbm) / 52.0;
    const double n_sc =
        util::thermal_noise_watt(312500.0, link.profile.noise_figure_db);
    EXPECT_NEAR(medium.estimate_noise_variance(link), n_sc / p_sc,
                1e-12 * n_sc / p_sc);
}

TEST(Medium, ArrayChangesResponse) {
    Medium medium = free_space_medium();
    surface::Array array;
    array.add_element(surface::Element::sp4t_prototype(
        {5, 2, 0}, em::Antenna::omni(12.0), 2.462e9));
    const std::size_t id = medium.add_array(std::move(array));
    const Link link = simple_link(10.0);
    const CVec h_on = medium.frequency_response(link);
    medium.array(id).apply({3});  // absorptive
    const CVec h_off = medium.frequency_response(link);
    EXPECT_GT(util::max_abs_diff(h_on, h_off), 1e-9);
    // With the element absorptive the response reduces to ~the direct ray.
    Medium bare = free_space_medium();
    const CVec h_direct = bare.frequency_response(link);
    for (std::size_t k = 0; k < h_direct.size(); ++k)
        EXPECT_NEAR(std::abs(h_off[k]), std::abs(h_direct[k]),
                    0.05 * std::abs(h_direct[k]));
}

TEST(Medium, EnvironmentMutationInvalidatesCache) {
    Medium medium = free_space_medium();
    const Link link = simple_link(10.0);
    const CVec before = medium.frequency_response(link);
    em::Scatterer s;
    s.position = {5, 3, 0};
    s.reflectivity = {0.5, 0.0};
    medium.environment().add_scatterer(s);
    const CVec after = medium.frequency_response(link);
    EXPECT_GT(util::max_abs_diff(before, after), 1e-9);
}

TEST(Medium, CachedTraceIsStable) {
    Medium medium = free_space_medium();
    const Link link = simple_link(10.0);
    const CVec a = medium.frequency_response(link);
    const CVec b = medium.frequency_response(link);
    EXPECT_LT(util::max_abs_diff(a, b), 1e-15);
}

TEST(Medium, SoundMimoShape) {
    Medium medium = free_space_medium();
    std::vector<em::RadiatingEndpoint> txs = {
        {{0, 0, 0}, em::Antenna::omni(0.0), {}},
        {{0, 0.06, 0}, em::Antenna::omni(0.0), {}}};
    std::vector<em::RadiatingEndpoint> rxs = {
        {{8, 0, 0}, em::Antenna::omni(0.0), {}},
        {{8, 0.06, 0}, em::Antenna::omni(0.0), {}}};
    util::Rng rng(6);
    const auto est = medium.sound_mimo(txs, rxs, RadioProfile::usrp_x310(),
                                       4, rng);
    EXPECT_EQ(est.num_subcarriers(), 52u);
    EXPECT_EQ(est.num_tx(), 2u);
    EXPECT_EQ(est.num_rx(), 2u);
}

TEST(Medium, SoundNeedsTwoRepeats) {
    Medium medium = free_space_medium();
    util::Rng rng(1);
    EXPECT_THROW(medium.sound(simple_link(), 1, rng),
                 util::ContractViolation);
}

// ----------------------------------------------------------- timedomain

TEST(TimeDomain, HighSnrFrameDecodes) {
    Medium medium = free_space_medium();
    Link link = simple_link(5.0);  // short range -> very high SNR
    util::Rng rng(7);
    phy::FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 6;
    spec.modulation = phy::Modulation::kQam16;
    TimeDomainConfig cfg;
    const TimeDomainResult res = exchange_frame(medium, link, spec, rng, cfg);
    EXPECT_EQ(res.bit_errors, 0u);
    EXPECT_LT(res.evm_rms, 0.1);
}

TEST(TimeDomain, EstimateMatchesFrequencyDomain) {
    // The headline validation: the full sample-level chain and the
    // frequency-domain shortcut must report the same channel magnitudes.
    Medium medium(em::Environment{}, phy::OfdmParams::wifi20());
    em::Scatterer s;
    s.position = {4, 2, 0};
    s.reflectivity = {0.4, 0.2};
    medium.environment().add_scatterer(s);

    Link link = simple_link(8.0);
    util::Rng rng(8);
    phy::FrameSpec spec;
    spec.num_ltf = 8;
    spec.num_data = 0;
    TimeDomainConfig cfg;
    cfg.apply_cfo = false;
    cfg.apply_phase_noise = false;
    const TimeDomainResult res = exchange_frame(medium, link, spec, rng, cfg);
    const CVec h_fd = medium.frequency_response(link);
    ASSERT_EQ(res.estimate.h.size(), h_fd.size());
    for (std::size_t k = 0; k < h_fd.size(); ++k)
        EXPECT_NEAR(std::abs(res.estimate.h[k]), std::abs(h_fd[k]),
                    0.05 * std::abs(h_fd[k]) + 1e-9)
            << "subcarrier " << k;
}

TEST(TimeDomain, SnrAgreesWithLinkBudget) {
    Medium medium = free_space_medium();
    Link link = simple_link(30.0);
    util::Rng rng(9);
    phy::FrameSpec spec;
    spec.num_ltf = 16;
    spec.num_data = 0;
    TimeDomainConfig cfg;
    cfg.apply_cfo = false;
    cfg.apply_phase_noise = false;
    // Average several frames for a stable SNR estimate.
    std::vector<double> mean_snrs;
    for (int i = 0; i < 8; ++i) {
        const TimeDomainResult res =
            exchange_frame(medium, link, spec, rng, cfg);
        mean_snrs.push_back(util::mean(res.estimate.snr_db(90.0, -90.0)));
    }
    const auto true_snr = medium.true_snr_db(link);
    EXPECT_NEAR(util::mean(mean_snrs), util::mean(true_snr), 2.5);
}

TEST(TimeDomain, CfoAppliedAndEstimated) {
    Medium medium = free_space_medium();
    Link link = simple_link(5.0);
    link.profile.max_cfo_hz = 2000.0;
    util::Rng rng(10);
    phy::FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 2;
    TimeDomainConfig cfg;
    cfg.apply_phase_noise = false;
    const TimeDomainResult res = exchange_frame(medium, link, spec, rng, cfg);
    EXPECT_NE(res.applied_cfo_hz, 0.0);
    EXPECT_NEAR(res.rx.cfo_estimate_hz, res.applied_cfo_hz,
                std::abs(res.applied_cfo_hz) * 0.1 + 20.0);
    EXPECT_EQ(res.bit_errors, 0u);  // corrected
}

TEST(TimeDomain, UncorrectedCfoDegrades) {
    Medium medium = free_space_medium();
    Link link = simple_link(5.0);
    link.profile.max_cfo_hz = 5000.0;
    util::Rng rng(11);
    phy::FrameSpec spec;
    spec.num_ltf = 2;
    spec.num_data = 10;
    spec.modulation = phy::Modulation::kQam64;
    TimeDomainConfig cfg;
    cfg.correct_cfo = false;
    cfg.apply_phase_noise = false;
    std::size_t total_errors = 0;
    for (int i = 0; i < 4; ++i)
        total_errors +=
            exchange_frame(medium, link, spec, rng, cfg).bit_errors;
    EXPECT_GT(total_errors, 0u);
}

TEST(TimeDomain, PressElementVisibleInTimeDomain) {
    // A strong PRESS element near the link must change the time-domain
    // channel estimate between its reflective and absorptive states.
    Medium medium = free_space_medium();
    surface::Array array;
    array.add_element(surface::Element::sp4t_prototype(
        {4, 1.0, 0}, em::Antenna::omni(14.0), 2.462e9));
    const std::size_t id = medium.add_array(std::move(array));
    Link link = simple_link(8.0);
    phy::FrameSpec spec;
    spec.num_ltf = 8;
    TimeDomainConfig cfg;
    cfg.apply_cfo = false;
    cfg.apply_phase_noise = false;

    util::Rng rng(12);
    medium.array(id).apply({0});
    const auto on = exchange_frame(medium, link, spec, rng, cfg);
    medium.array(id).apply({3});
    const auto off = exchange_frame(medium, link, spec, rng, cfg);
    double max_diff_db = 0.0;
    for (std::size_t k = 0; k < on.estimate.h.size(); ++k) {
        const double d = std::abs(
            util::amplitude_to_db(std::abs(on.estimate.h[k])) -
            util::amplitude_to_db(std::abs(off.estimate.h[k])));
        max_diff_db = std::max(max_diff_db, d);
    }
    EXPECT_GT(max_diff_db, 0.2);
}

TEST(TimeDomain, EmptyTransmitThrows) {
    Medium medium = free_space_medium();
    util::Rng rng(1);
    EXPECT_THROW(
        transmit_through(medium, simple_link(), {}, rng, TimeDomainConfig{}),
        util::ContractViolation);
}

}  // namespace
}  // namespace press::sdr
