// Tests for the electromagnetics substrate: geometry, antennas, the image-
// method room, the propagation engine's link budgets and obstruction
// handling, and channel synthesis (including the time/frequency
// consistency property the PHY relies on).
#include <gtest/gtest.h>

#include <cmath>

#include "em/antenna.hpp"
#include "em/channel.hpp"
#include "em/environment.hpp"
#include "em/geometry.hpp"
#include "em/material.hpp"
#include "em/room.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace press::em {
namespace {

using util::cd;
using util::CVec;

// ------------------------------------------------------------- geometry

TEST(Geometry, VectorAlgebra) {
    const Vec3 a{1, 2, 3};
    const Vec3 b{4, 5, 6};
    EXPECT_DOUBLE_EQ((a + b).x, 5.0);
    EXPECT_DOUBLE_EQ((b - a).z, 3.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    const Vec3 c = a.cross(b);
    EXPECT_DOUBLE_EQ(c.x, -3.0);
    EXPECT_DOUBLE_EQ(c.y, 6.0);
    EXPECT_DOUBLE_EQ(c.z, -3.0);
    EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-12);
    EXPECT_NEAR((Vec3{0, 0, 2}).normalized().z, 1.0, 1e-12);
}

TEST(Geometry, NormalizeZeroThrows) {
    EXPECT_THROW((Vec3{0, 0, 0}).normalized(), util::ContractViolation);
}

TEST(Geometry, SegmentBoxIntersection) {
    const Aabb box{{1, 1, 1}, {2, 2, 2}};
    // Straight through the middle.
    EXPECT_TRUE(segment_intersects_box({0, 1.5, 1.5}, {3, 1.5, 1.5}, box));
    // Entirely outside.
    EXPECT_FALSE(segment_intersects_box({0, 0, 0}, {0.5, 0.5, 0.5}, box));
    // Parallel to a face, offset outside.
    EXPECT_FALSE(segment_intersects_box({0, 3, 1.5}, {3, 3, 1.5}, box));
    // Diagonal crossing a corner region.
    EXPECT_TRUE(segment_intersects_box({0, 0, 0}, {3, 3, 3}, box));
    // Segment that stops before the box.
    EXPECT_FALSE(segment_intersects_box({0, 1.5, 1.5}, {0.9, 1.5, 1.5}, box));
    // Endpoint exactly on the surface does not count as blocking.
    EXPECT_FALSE(segment_intersects_box({0, 1.5, 1.5}, {1.0, 1.5, 1.5}, box));
}

TEST(Geometry, AabbContains) {
    const Aabb box{{0, 0, 0}, {1, 1, 1}};
    EXPECT_TRUE(box.contains({0.5, 0.5, 0.5}));
    EXPECT_TRUE(box.contains({1, 1, 1}));  // inclusive
    EXPECT_FALSE(box.contains({1.01, 0.5, 0.5}));
    EXPECT_NEAR(box.center().x, 0.5, 1e-15);
}

// -------------------------------------------------------------- antenna

TEST(Antenna, OmniIsIsotropic) {
    const Antenna a = Antenna::omni(2.0);
    const double g1 = a.amplitude_gain({1, 0, 0});
    const double g2 = a.amplitude_gain({0, -1, 0.5});
    EXPECT_NEAR(g1, g2, 1e-12);
    EXPECT_NEAR(g1, util::db_to_amplitude(2.0), 1e-12);
    EXPECT_TRUE(a.is_omni());
}

TEST(Antenna, ParabolicBoresightPeak) {
    const Antenna a = Antenna::parabolic(14.0, 21.0, {1, 0, 0});
    EXPECT_NEAR(a.amplitude_gain({1, 0, 0}), util::db_to_amplitude(14.0),
                1e-9);
    EXPECT_FALSE(a.is_omni());
}

TEST(Antenna, ParabolicHalfBeamwidthIs3dBDown) {
    const Antenna a = Antenna::parabolic(14.0, 20.0, {1, 0, 0});
    // 10 degrees off boresight of a 20-degree beam -> -3 dB in power.
    const double rad = 10.0 * util::kPi / 180.0;
    const Vec3 dir{std::cos(rad), std::sin(rad), 0.0};
    EXPECT_NEAR(util::amplitude_to_db(a.amplitude_gain(dir)), 14.0 - 3.0,
                0.05);
}

TEST(Antenna, ParabolicBacklobeFloor) {
    const Antenna a = Antenna::parabolic(14.0, 21.0, {1, 0, 0}, 20.0);
    EXPECT_NEAR(util::amplitude_to_db(a.amplitude_gain({-1, 0, 0})),
                14.0 - 20.0, 1e-9);
}

TEST(Antenna, SetBoresight) {
    Antenna a = Antenna::parabolic(10.0, 30.0, {1, 0, 0});
    a.set_boresight({0, 1, 0});
    EXPECT_NEAR(a.amplitude_gain({0, 1, 0}), util::db_to_amplitude(10.0),
                1e-9);
}

TEST(Antenna, InvalidParametersThrow) {
    EXPECT_THROW(Antenna::parabolic(10.0, 0.0, {1, 0, 0}),
                 util::ContractViolation);
    EXPECT_THROW(Antenna::parabolic(10.0, 200.0, {1, 0, 0}),
                 util::ContractViolation);
}

// ----------------------------------------------------------------- room

TEST(Room, FirstOrderImageCountForBox) {
    const Room room(Aabb{{0, 0, 0}, {4, 3, 3}}, Material::drywall());
    const auto images = room.images({1, 1, 1}, 1);
    EXPECT_EQ(images.size(), 6u);  // one per wall
    for (const SourceImage& img : images) {
        EXPECT_EQ(img.order, 1);
        // Single drywall bounce.
        EXPECT_NEAR(std::abs(img.reflection -
                             Material::drywall().reflection),
                    0.0, 1e-12);
    }
}

TEST(Room, FirstOrderImagePositions) {
    const Room room(Aabb{{0, 0, 0}, {4, 3, 3}}, Material::drywall());
    const Vec3 src{1, 1, 1};
    const auto images = room.images(src, 1);
    // The mirror across x=0 sits at (-1, 1, 1); across x=4 at (7, 1, 1).
    bool found_low = false;
    bool found_high = false;
    for (const SourceImage& img : images) {
        if (std::abs(img.position.x + 1.0) < 1e-12 &&
            std::abs(img.position.y - 1.0) < 1e-12)
            found_low = true;
        if (std::abs(img.position.x - 7.0) < 1e-12 &&
            std::abs(img.position.y - 1.0) < 1e-12)
            found_high = true;
    }
    EXPECT_TRUE(found_low);
    EXPECT_TRUE(found_high);
}

TEST(Room, PerWallMaterialInCoefficient) {
    Room room(Aabb{{0, 0, 0}, {4, 3, 3}}, Material::drywall());
    room.set_wall_material(Wall::kXLow, Material::metal());
    const auto images = room.images({1, 1, 1}, 1);
    bool found_metal = false;
    for (const SourceImage& img : images) {
        if (std::abs(img.position.x + 1.0) < 1e-12 &&
            std::abs(img.position.y - 1.0) < 1e-12 &&
            std::abs(img.position.z - 1.0) < 1e-12) {
            EXPECT_NEAR(std::abs(img.reflection), 0.95, 1e-12);
            found_metal = true;
        }
    }
    EXPECT_TRUE(found_metal);
}

TEST(Room, OrderFiltering) {
    const Room room(Aabb{{0, 0, 0}, {4, 3, 3}}, Material::drywall());
    const auto o1 = room.images({1, 1, 1}, 1);
    const auto o2 = room.images({1, 1, 1}, 2);
    const auto o3 = room.images({1, 1, 1}, 3);
    EXPECT_LT(o1.size(), o2.size());
    EXPECT_LT(o2.size(), o3.size());
    for (const SourceImage& img : o2) EXPECT_LE(img.order, 2);
    // Second order magnitude is Gamma^2.
    for (const SourceImage& img : o2) {
        if (img.order == 2) {
            EXPECT_NEAR(std::abs(img.reflection), 0.45 * 0.45, 1e-12);
        }
    }
}

TEST(Room, SourceOutsideThrows) {
    const Room room(Aabb{{0, 0, 0}, {4, 3, 3}}, Material::drywall());
    EXPECT_THROW(room.images({5, 1, 1}, 1), util::ContractViolation);
}

TEST(Room, DegenerateBoundsThrow) {
    EXPECT_THROW(Room(Aabb{{0, 0, 0}, {0, 3, 3}}, Material::drywall()),
                 util::ContractViolation);
}

// ---------------------------------------------------------- environment

Environment free_space() { return Environment{}; }

TEST(Environment, DirectPathFriisBudget) {
    Environment env = free_space();
    RadiatingEndpoint tx{{0, 0, 0}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{10, 0, 0}, Antenna::omni(0.0), {}};
    const auto paths = env.trace(tx, rx, 2.4e9);
    ASSERT_EQ(paths.size(), 1u);
    const Path& p = paths.front();
    EXPECT_EQ(p.kind, PathKind::kDirect);
    // Friis amplitude lambda / (4 pi d) with 0 dBi both ends.
    const double lambda = util::wavelength(2.4e9);
    EXPECT_NEAR(std::abs(p.gain), lambda / (4.0 * util::kPi * 10.0), 1e-12);
    EXPECT_NEAR(p.delay_s, 10.0 / util::kSpeedOfLight, 1e-18);
    EXPECT_NEAR(p.doppler_hz, 0.0, 1e-12);
}

TEST(Environment, ObstacleAttenuatesDirect) {
    Environment env = free_space();
    env.add_obstacle({{{4, -1, -1}, {6, 1, 1}}, 30.0});
    RadiatingEndpoint tx{{0, 0, 0}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{10, 0, 0}, Antenna::omni(0.0), {}};
    const auto blocked = env.trace(tx, rx, 2.4e9);
    env.clear_obstacles();
    const auto clear = env.trace(tx, rx, 2.4e9);
    EXPECT_NEAR(util::amplitude_to_db(std::abs(clear[0].gain)) -
                    util::amplitude_to_db(std::abs(blocked[0].gain)),
                30.0, 1e-9);
}

TEST(Environment, TwoHopRadarBudget) {
    Environment env = free_space();
    RadiatingEndpoint tx{{0, 0, 0}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{4, 0, 0}, Antenna::omni(0.0), {}};
    const Vec3 via{2, 1.5, 0};  // d1 = d2 = 2.5
    const Antenna elem = Antenna::omni(10.0);
    const auto p = env.two_hop(tx, rx, via, elem, {0.5, 0.0}, 1e-9, 2.4e9,
                               PathKind::kPressElement, 3);
    ASSERT_TRUE(p.has_value());
    const double lambda = util::wavelength(2.4e9);
    const double expected = 0.5 * util::db_to_linear(10.0) /* Ge as power */ *
                            lambda * lambda /
                            ((4.0 * util::kPi * 2.5) * (4.0 * util::kPi * 2.5));
    EXPECT_NEAR(std::abs(p->gain), expected, expected * 1e-9);
    EXPECT_NEAR(p->delay_s, 5.0 / util::kSpeedOfLight + 1e-9, 1e-15);
    EXPECT_EQ(p->element_index, 3);
}

TEST(Environment, TwoHopZeroReflectionYieldsNoPath) {
    Environment env = free_space();
    RadiatingEndpoint tx{{0, 0, 0}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{4, 0, 0}, Antenna::omni(0.0), {}};
    EXPECT_FALSE(env.two_hop(tx, rx, {2, 1, 0}, Antenna::omni(0.0),
                             {0.0, 0.0}, 0.0, 2.4e9,
                             PathKind::kPressElement)
                     .has_value());
}

TEST(Environment, ScattererBudgetAndObstruction) {
    Environment env = free_space();
    Scatterer s;
    s.position = {5, 2, 0};
    s.reflectivity = {0.3, 0.0};
    env.add_scatterer(s);
    RadiatingEndpoint tx{{0, 0, 0}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{10, 0, 0}, Antenna::omni(0.0), {}};
    auto paths = env.trace(tx, rx, 2.4e9);
    ASSERT_EQ(paths.size(), 2u);
    const Path& sp = paths[1];
    EXPECT_EQ(sp.kind, PathKind::kScatterer);
    const double d1 = std::sqrt(25.0 + 4.0);
    const double d2 = std::sqrt(25.0 + 4.0);
    const double lambda = util::wavelength(2.4e9);
    EXPECT_NEAR(std::abs(sp.gain),
                0.3 * lambda /
                    ((4.0 * util::kPi * d1) * (4.0 * util::kPi * d2)),
                1e-12);
    // Block the first leg only.
    env.add_obstacle({{{2, 0.5, -1}, {3, 1.5, 1}}, 20.0});
    paths = env.trace(tx, rx, 2.4e9);
    EXPECT_NEAR(util::amplitude_to_db(0.3 * lambda /
                                      ((4.0 * util::kPi * d1) *
                                       (4.0 * util::kPi * d2))) -
                    util::amplitude_to_db(std::abs(paths[1].gain)),
                20.0, 1e-9);
}

TEST(Environment, WallReflectionMagnitude) {
    Environment env;
    env.set_room(Room(Aabb{{0, 0, 0}, {10, 10, 10}}, Material::metal()));
    env.set_max_reflection_order(1);
    RadiatingEndpoint tx{{2, 5, 5}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{8, 5, 5}, Antenna::omni(0.0), {}};
    const auto paths = env.trace(tx, rx, 2.4e9);
    // Direct + 6 first-order images.
    ASSERT_EQ(paths.size(), 7u);
    // The floor-bounce image is at (2, 5, -5): distance to rx.
    const double d = (Vec3{8, 5, 5} - Vec3{2, 5, -5}).norm();
    const double lambda = util::wavelength(2.4e9);
    bool found = false;
    for (const Path& p : paths) {
        if (p.kind == PathKind::kWall &&
            std::abs(p.delay_s - d / util::kSpeedOfLight) < 1e-12) {
            EXPECT_NEAR(std::abs(p.gain),
                        0.95 * lambda / (4.0 * util::kPi * d), 1e-12);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Environment, FoldedObstructionBlocksFloorBounce) {
    // A full-width screen between TX and RX, shorter than the ceiling: the
    // direct path and the floor bounce must be attenuated, while the
    // ceiling bounce clears the top edge.
    Environment env;
    env.set_room(Room(Aabb{{0, 0, 0}, {10, 6, 3}}, Material::metal()));
    env.set_max_reflection_order(1);
    env.add_obstacle({{{4.9, 0, 0}, {5.1, 6, 2.0}}, 40.0});
    RadiatingEndpoint tx{{3, 3, 1.2}, Antenna::omni(0.0), {}};
    RadiatingEndpoint rx{{7, 3, 1.2}, Antenna::omni(0.0), {}};
    const auto paths = env.trace(tx, rx, 2.4e9);
    const double lambda = util::wavelength(2.4e9);
    for (const Path& p : paths) {
        const double d = p.delay_s * util::kSpeedOfLight;
        const double unobstructed = (p.kind == PathKind::kDirect ? 1.0 : 0.95) *
                                    lambda / (4.0 * util::kPi * d);
        const double atten_db = util::amplitude_to_db(unobstructed) -
                                util::amplitude_to_db(std::abs(p.gain));
        // Identify the ceiling bounce by its reflection height: the image
        // is at z = 2*3 - 1.2 = 4.8, so the fold peaks at the ceiling.
        const bool ceiling_bounce =
            p.kind == PathKind::kWall &&
            std::abs(d - (Vec3{7, 3, 1.2} - Vec3{3, 3, 4.8}).norm()) < 1e-9;
        const bool floor_bounce =
            p.kind == PathKind::kWall &&
            std::abs(d - (Vec3{7, 3, 1.2} - Vec3{3, 3, -1.2}).norm()) < 1e-9;
        if (p.kind == PathKind::kDirect || floor_bounce) {
            EXPECT_NEAR(atten_db, 40.0, 1e-6) << "path delay " << d;
        } else if (ceiling_bounce) {
            EXPECT_NEAR(atten_db, 0.0, 1e-6);
        }
    }
}

TEST(Environment, ChannelReciprocity) {
    // |H| must be identical in both directions (antennas equal).
    Environment env;
    env.set_room(Room(Aabb{{0, 0, 0}, {8, 6, 3}}, Material::drywall()));
    env.set_max_reflection_order(2);
    Scatterer s;
    s.position = {4, 1, 1};
    s.reflectivity = {0.3, 0.1};
    env.add_scatterer(s);
    RadiatingEndpoint a{{2, 3, 1.5}, Antenna::omni(2.0), {}};
    RadiatingEndpoint b{{6, 2, 1.0}, Antenna::omni(2.0), {}};
    std::vector<double> freqs;
    for (int k = 0; k < 16; ++k) freqs.push_back(2.4e9 + k * 1e6);
    const CVec h_ab = frequency_response(env.trace(a, b, 2.4e9), freqs);
    const CVec h_ba = frequency_response(env.trace(b, a, 2.4e9), freqs);
    for (std::size_t k = 0; k < freqs.size(); ++k)
        EXPECT_NEAR(std::abs(h_ab[k]), std::abs(h_ba[k]),
                    1e-9 * std::abs(h_ab[k]));
}

TEST(Environment, DopplerSign) {
    // TX moving toward RX -> positive shift; RX moving away -> negative.
    const double f = 2.4e9;
    const Vec3 dir{1, 0, 0};
    EXPECT_GT(doppler_shift_hz({1, 0, 0}, {0, 0, 0}, dir, dir, f), 0.0);
    EXPECT_LT(doppler_shift_hz({0, 0, 0}, {1, 0, 0}, dir, dir, f), 0.0);
    // 1 m/s at 2.4 GHz -> 8 Hz.
    EXPECT_NEAR(doppler_shift_hz({1, 0, 0}, {0, 0, 0}, dir, dir, f), 8.005,
                0.01);
}

TEST(Environment, InvalidReflectionOrderThrows) {
    Environment env;
    EXPECT_THROW(env.set_max_reflection_order(-1), util::ContractViolation);
    EXPECT_THROW(env.set_max_reflection_order(7), util::ContractViolation);
}

// -------------------------------------------------------------- channel

TEST(Channel, SinglePathResponse) {
    Path p;
    p.gain = {2.0, 0.0};
    p.delay_s = 100e-9;
    const std::vector<double> freqs = {2.4e9};
    const CVec h = frequency_response({p}, freqs);
    const cd expected =
        cd{2.0, 0.0} * std::polar(1.0, -util::kTwoPi * 2.4e9 * 100e-9);
    EXPECT_NEAR(std::abs(h[0] - expected), 0.0, 1e-9);
}

TEST(Channel, TwoPathNullLocation) {
    // Two equal paths with delay difference dt null at frequencies where
    // 2 pi f dt is an odd multiple of pi.
    Path a;
    a.gain = {1.0, 0.0};
    a.delay_s = 0.0;
    Path b;
    b.gain = {1.0, 0.0};
    b.delay_s = 50e-9;  // nulls every 20 MHz, at 10 MHz offsets
    const double f_null = 10e6 / 1.0;  // f*dt = 0.5
    const CVec h =
        frequency_response({a, b}, {f_null, 2.0 * f_null});
    EXPECT_NEAR(std::abs(h[0]), 0.0, 1e-9);       // destructive
    EXPECT_NEAR(std::abs(h[1]), 2.0, 1e-9);       // constructive
}

TEST(Channel, DopplerRotatesOverTime) {
    Path p;
    p.gain = {1.0, 0.0};
    p.delay_s = 0.0;
    p.doppler_hz = 100.0;
    const std::vector<double> freqs = {0.0};
    const CVec h0 = frequency_response({p}, freqs, 0.0);
    const CVec h1 = frequency_response({p}, freqs, 2.5e-3);  // quarter turn
    EXPECT_NEAR(std::arg(h1[0] / h0[0]), util::kPi / 2.0, 1e-9);
}

TEST(Channel, RmsDelaySpread) {
    Path a;
    a.gain = {1.0, 0.0};
    a.delay_s = 0.0;
    Path b;
    b.gain = {1.0, 0.0};
    b.delay_s = 100e-9;
    // Equal powers at 0 and 100 ns -> rms spread 50 ns.
    EXPECT_NEAR(rms_delay_spread({a, b}), 50e-9, 1e-15);
    EXPECT_DOUBLE_EQ(rms_delay_spread({a}), 0.0);
    EXPECT_NEAR(total_power({a, b}), 2.0, 1e-12);
}

TEST(Channel, CoherenceTimeMatchesPaperNumbers) {
    // Paper Section 2: ~80 ms at 0.5 mph and ~6 ms at 6 mph at 2.4 GHz.
    const double mph = 0.44704;
    EXPECT_NEAR(coherence_time_s(2.4e9, 0.5 * mph), 80e-3, 25e-3);
    EXPECT_NEAR(coherence_time_s(2.4e9, 6.0 * mph), 6e-3, 2.5e-3);
}

TEST(Channel, CoherenceBandwidthFromSpread) {
    Path a;
    a.gain = {1.0, 0.0};
    a.delay_s = 0.0;
    Path b;
    b.gain = {1.0, 0.0};
    b.delay_s = 100e-9;
    EXPECT_NEAR(coherence_bandwidth_hz({a, b}), 1.0 / (5.0 * 50e-9), 1.0);
    EXPECT_TRUE(std::isinf(coherence_bandwidth_hz({a})));
}

TEST(Channel, ImpulseResponseMatchesFrequencyResponse) {
    // The key consistency property: sampling the CIR and evaluating its
    // DTFT at the subcarrier offsets reproduces H(f) up to the bulk-delay
    // linear phase, so magnitudes must agree.
    util::Rng rng(21);
    std::vector<Path> paths;
    for (int i = 0; i < 5; ++i) {
        Path p;
        p.gain = rng.complex_gaussian(1.0);
        p.delay_s = 10e-9 + rng.uniform(0.0, 300e-9);
        paths.push_back(p);
    }
    const double fc = 2.462e9;
    const double fs = 20e6;
    const CVec cir = impulse_response(paths, fc, fs, 64, 12);
    for (int m = -8; m <= 8; m += 2) {
        const double f_off = m * fs / 64.0;
        // DTFT of the sampled CIR at baseband frequency f_off.
        cd via_cir{0.0, 0.0};
        for (std::size_t k = 0; k < cir.size(); ++k)
            via_cir += cir[k] * std::polar(1.0, -util::kTwoPi * f_off *
                                                    static_cast<double>(k) /
                                                    fs);
        const CVec direct = frequency_response(paths, {fc + f_off});
        EXPECT_NEAR(std::abs(via_cir), std::abs(direct[0]),
                    0.02 * std::abs(direct[0]) + 1e-6)
            << "offset " << f_off;
    }
}

TEST(Channel, ImpulseResponseEnergyConservation) {
    util::Rng rng(22);
    std::vector<Path> paths;
    for (int i = 0; i < 4; ++i) {
        Path p;
        p.gain = rng.complex_gaussian(1.0);
        p.delay_s = rng.uniform(0.0, 200e-9);
        paths.push_back(p);
    }
    const CVec cir = impulse_response(paths, 2.4e9, 20e6, 96, 12);
    // With well-separated windowed-sinc kernels, tap energy approximates
    // total path power (cross terms average out; generous tolerance).
    EXPECT_NEAR(util::energy(cir), total_power(paths),
                0.35 * total_power(paths));
}

TEST(Channel, ImpulseResponseContracts) {
    EXPECT_THROW(impulse_response({}, 2.4e9, 0.0, 16),
                 util::ContractViolation);
    EXPECT_THROW(impulse_response({}, 2.4e9, 20e6, 0),
                 util::ContractViolation);
    EXPECT_THROW(impulse_response({}, 2.4e9, 20e6, 8, 9),
                 util::ContractViolation);
}

}  // namespace
}  // namespace press::em
