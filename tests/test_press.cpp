// Tests for the PRESS element layer: loads, elements, configuration
// spaces and arrays.
#include <gtest/gtest.h>

#include <cmath>

#include "em/environment.hpp"
#include "press/array.hpp"
#include "press/config.hpp"
#include "press/element.hpp"
#include "press/load.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::surface {
namespace {

constexpr double kCarrier = 2.462e9;

// ----------------------------------------------------------------- load

TEST(Load, ReflectivePhaseThroughDelay) {
    for (double phase : {0.0, util::kPi / 2.0, util::kPi, 1.5 * util::kPi}) {
        const Load l = Load::reflective(phase, kCarrier, 0.85);
        // The stub's delay produces the requested phase at the carrier.
        EXPECT_NEAR(util::kTwoPi * kCarrier * l.extra_delay_s, phase, 1e-9);
        EXPECT_NEAR(std::abs(l.reflection), 0.85, 1e-12);
        EXPECT_FALSE(l.is_active());
        EXPECT_FALSE(l.is_off());
    }
}

TEST(Load, PhaseDispersionAcrossBandIsSmall) {
    // A lambda/2 stub's phase changes by only ~0.4% across a 20 MHz band at
    // 2.462 GHz, like a real cable stub.
    const Load l = Load::reflective(util::kPi, kCarrier);
    const double phase_low = util::kTwoPi * (kCarrier - 10e6) * l.extra_delay_s;
    const double phase_high =
        util::kTwoPi * (kCarrier + 10e6) * l.extra_delay_s;
    EXPECT_NEAR(phase_high - phase_low, util::kPi * 20e6 / kCarrier, 1e-9);
}

TEST(Load, Absorptive) {
    const Load l = Load::absorptive();
    EXPECT_LT(std::abs(l.reflection), 0.05);
    EXPECT_TRUE(l.is_off());
    EXPECT_EQ(l.label, "T");
}

TEST(Load, ActiveGain) {
    const Load l = Load::active(20.0, util::kPi / 2.0, kCarrier);
    EXPECT_NEAR(std::abs(l.reflection), 10.0, 1e-9);
    EXPECT_TRUE(l.is_active());
}

TEST(Load, Labels) {
    EXPECT_EQ(phase_label(0.0), "0");
    EXPECT_EQ(phase_label(util::kPi), "pi");
    EXPECT_EQ(phase_label(util::kPi / 2.0), "0.5pi");
    EXPECT_EQ(phase_label(1.5 * util::kPi), "1.5pi");
}

TEST(Load, InvalidArgumentsThrow) {
    EXPECT_THROW(Load::reflective(-1.0, kCarrier), util::ContractViolation);
    EXPECT_THROW(Load::reflective(0.0, kCarrier, 0.0),
                 util::ContractViolation);
    EXPECT_THROW(Load::reflective(0.0, kCarrier, 1.5),
                 util::ContractViolation);
    EXPECT_THROW(Load::absorptive(0.5), util::ContractViolation);
}

// -------------------------------------------------------------- element

TEST(Element, Sp4tPrototypeStates) {
    const Element e = Element::sp4t_prototype({0, 0, 0},
                                              em::Antenna::omni(12.0),
                                              kCarrier);
    // Paper Figure 3: 0, lambda/4, lambda/2 stubs (phases 0, pi/2, pi)
    // plus an absorptive load.
    ASSERT_EQ(e.num_states(), 4);
    EXPECT_EQ(e.load(0).label, "0");
    EXPECT_EQ(e.load(1).label, "0.5pi");
    EXPECT_EQ(e.load(2).label, "pi");
    EXPECT_EQ(e.load(3).label, "T");
    EXPECT_FALSE(e.has_active_states());
}

TEST(Element, SelectAndQuery) {
    Element e = Element::sp4t_prototype({0, 0, 0}, em::Antenna::omni(12.0),
                                        kCarrier);
    EXPECT_EQ(e.selected_state(), 0);
    e.select(2);
    EXPECT_EQ(e.selected_state(), 2);
    EXPECT_EQ(e.selected_load().label, "pi");
    EXPECT_THROW(e.select(4), util::ContractViolation);
    EXPECT_THROW(e.select(-1), util::ContractViolation);
    EXPECT_THROW(e.load(9), util::ContractViolation);
}

TEST(Element, UniformPhases) {
    const Element e4 = Element::uniform_phases(
        {0, 0, 0}, em::Antenna::omni(12.0), kCarrier, 4, false);
    EXPECT_EQ(e4.num_states(), 4);
    EXPECT_EQ(e4.load(3).label, "1.5pi");
    const Element e8 = Element::uniform_phases(
        {0, 0, 0}, em::Antenna::omni(12.0), kCarrier, 8, true);
    EXPECT_EQ(e8.num_states(), 9);
    EXPECT_TRUE(e8.load(8).is_off());
}

TEST(Element, ActiveFactory) {
    const Element e = Element::active({0, 0, 0}, em::Antenna::omni(6.0),
                                      kCarrier, 4, 15.0);
    EXPECT_EQ(e.num_states(), 5);
    EXPECT_TRUE(e.has_active_states());
    EXPECT_TRUE(e.load(4).is_off());
}

// --------------------------------------------------------------- config

TEST(ConfigSpace, SizeAndRoundtrip) {
    const ConfigSpace space({4, 4, 4});
    EXPECT_EQ(space.size(), 64u);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(space.index_of(space.at(i)), i);
}

class MixedRadixRoundtrip
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(MixedRadixRoundtrip, AllIndicesRoundtrip) {
    const ConfigSpace space(GetParam());
    for (std::uint64_t i = 0; i < space.size(); ++i) {
        const Config c = space.at(i);
        EXPECT_TRUE(space.valid(c));
        EXPECT_EQ(space.index_of(c), i);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Radices, MixedRadixRoundtrip,
    ::testing::Values(std::vector<int>{2}, std::vector<int>{1, 5},
                      std::vector<int>{2, 3, 4}, std::vector<int>{4, 4, 4},
                      std::vector<int>{3, 1, 2, 5}));

TEST(ConfigSpace, Validation) {
    const ConfigSpace space({4, 4});
    EXPECT_TRUE(space.valid({0, 3}));
    EXPECT_FALSE(space.valid({0}));
    EXPECT_FALSE(space.valid({0, 4}));
    EXPECT_FALSE(space.valid({-1, 0}));
    EXPECT_THROW(space.index_of({9, 9}), util::ContractViolation);
    EXPECT_THROW(space.at(16), util::ContractViolation);
}

TEST(ConfigSpace, OverflowThrows) {
    const ConfigSpace space(std::vector<int>(64, 10));  // 10^64 configs
    EXPECT_THROW(space.size(), std::overflow_error);
}

TEST(ConfigSpace, EnumerateSmall) {
    const ConfigSpace space({2, 3});
    const auto all = space.enumerate();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all.front(), (Config{0, 0}));
    EXPECT_EQ(all.back(), (Config{1, 2}));
}

TEST(ConfigSpace, ConfigToString) {
    const std::vector<std::vector<std::string>> labels = {
        {"0", "0.5pi", "pi", "T"}, {"0", "0.5pi", "pi", "T"}};
    EXPECT_EQ(config_to_string({2, 3}, labels), "(pi, T)");
    EXPECT_THROW(config_to_string({2}, labels), util::ContractViolation);
    EXPECT_THROW(config_to_string({2, 9}, labels), util::ContractViolation);
}

// ---------------------------------------------------------------- array

Array make_test_array() {
    std::vector<Element> elements;
    elements.push_back(Element::sp4t_prototype(
        {2, 1, 1}, em::Antenna::omni(12.0), kCarrier));
    elements.push_back(Element::sp4t_prototype(
        {3, 1, 1}, em::Antenna::omni(12.0), kCarrier));
    elements.push_back(Element::sp4t_prototype(
        {4, 1, 1}, em::Antenna::omni(12.0), kCarrier));
    return Array(std::move(elements));
}

TEST(Array, ConfigSpaceMatchesPaper) {
    Array array = make_test_array();
    // "Three antennas are used, which means there are 64 different PRESS
    // antenna configurations."
    EXPECT_EQ(array.config_space().size(), 64u);
}

TEST(Array, ApplyAndReadBack) {
    Array array = make_test_array();
    array.apply({1, 2, 3});
    EXPECT_EQ(array.current_config(), (Config{1, 2, 3}));
    EXPECT_EQ(array.element(2).selected_load().label, "T");
    EXPECT_THROW(array.apply({1, 2}), util::ContractViolation);
    EXPECT_THROW(array.element(5), util::ContractViolation);
}

TEST(Array, StateLabels) {
    Array array = make_test_array();
    const auto labels = array.state_labels();
    ASSERT_EQ(labels.size(), 3u);
    EXPECT_EQ(labels[0][1], "0.5pi");
    EXPECT_EQ(config_to_string(array.current_config(), labels), "(0, 0, 0)");
}

TEST(Array, PathsPerElement) {
    Array array = make_test_array();
    em::Environment env;
    em::RadiatingEndpoint tx{{0, 0, 1}, em::Antenna::omni(2.0), {}};
    em::RadiatingEndpoint rx{{6, 0, 1}, em::Antenna::omni(2.0), {}};
    array.apply({0, 1, 2});
    const auto paths = array.paths(env, tx, rx, kCarrier);
    ASSERT_EQ(paths.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(paths[i].kind, em::PathKind::kPressElement);
        EXPECT_EQ(paths[i].element_index, static_cast<int>(i));
    }
    // Terminated elements leak >= 38 dB less than reflective ones.
    array.apply({3, 1, 2});
    const auto paths_t = array.paths(env, tx, rx, kCarrier);
    EXPECT_LT(std::abs(paths_t[0].gain),
              std::abs(paths[0].gain) * 0.02);
}

TEST(Array, StubDelayShiftsPathDelay) {
    Array array = make_test_array();
    em::Environment env;
    em::RadiatingEndpoint tx{{0, 0, 1}, em::Antenna::omni(2.0), {}};
    em::RadiatingEndpoint rx{{6, 0, 1}, em::Antenna::omni(2.0), {}};
    array.apply({0, 0, 0});
    const auto p0 = array.paths(env, tx, rx, kCarrier);
    array.apply({2, 0, 0});  // pi stub on element 0
    const auto p2 = array.paths(env, tx, rx, kCarrier);
    const double extra = p2[0].delay_s - p0[0].delay_s;
    EXPECT_NEAR(util::kTwoPi * kCarrier * extra, util::kPi, 1e-9);
}

TEST(Array, RandomPlacementInsideRegion) {
    util::Rng rng(5);
    const em::Aabb region{{1, 1, 0.5}, {2, 2, 1.5}};
    const Array array = random_sp4t_array(10, region,
                                          em::Antenna::omni(12.0), kCarrier,
                                          rng);
    ASSERT_EQ(array.size(), 10u);
    for (const Element& e : array.elements())
        EXPECT_TRUE(region.contains(e.position()));
}

TEST(Array, LinearPlacementSpacing) {
    const Array array =
        linear_array(4, {0, 0, 0}, {0, 1, 0}, 0.1218,
                     em::Antenna::omni(6.0), kCarrier, 4, false);
    ASSERT_EQ(array.size(), 4u);
    for (std::size_t i = 1; i < 4; ++i) {
        const double d = em::distance(array.element(i - 1).position(),
                                      array.element(i).position());
        EXPECT_NEAR(d, 0.1218, 1e-12);
    }
}

TEST(Array, EmptyArrayConfigSpaceThrows) {
    Array array;
    EXPECT_THROW(array.config_space(), util::ContractViolation);
}

}  // namespace
}  // namespace press::surface
