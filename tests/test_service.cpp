// Tests for the control-plane service: wire roundtrips of the service
// protocol, admission control (queue bounds, priority eviction, load
// shedding), deadline expiry, slow-reader backpressure, epoch-fenced
// mutations, the watchdog's flight-dump-and-revert path, the chaos link,
// and decorrelated retry backoff — plus the no-silent-drop accounting
// ledger that every scenario must balance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "control/message.hpp"
#include "control/service.hpp"
#include "control/transport.hpp"
#include "core/scenarios.hpp"
#include "core/serve.hpp"
#include "fault/chaos.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "press/element.hpp"
#include "util/contracts.hpp"

namespace press::control {
namespace {

// ---- wire roundtrips ---------------------------------------------------

template <typename T>
T roundtrip(const T& msg, std::uint32_t seq = 7) {
    const auto frame = encode(Message{msg}, seq);
    const Decoded decoded = decode(frame);
    EXPECT_EQ(decoded.seq, seq);
    const T* out = std::get_if<T>(&decoded.message);
    EXPECT_NE(out, nullptr);
    return *out;
}

TEST(ServiceWire, HelloRoundtrip) {
    Hello msg;
    msg.priority_cap = 99;
    EXPECT_EQ(roundtrip(msg).priority_cap, 99);
}

TEST(ServiceWire, HelloAckRoundtrip) {
    HelloAck msg;
    msg.session_id = 42;
    msg.epoch = 0xABCDEF0123ull;
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.session_id, 42);
    EXPECT_EQ(out.epoch, 0xABCDEF0123ull);
}

TEST(ServiceWire, OptimizeRequestRoundtrip) {
    OptimizeRequest msg;
    msg.array_id = 3;
    msg.objective = 2;
    msg.link_id = 5;
    msg.searcher = 4;
    msg.budget_us = 123456;
    msg.deadline_us = 654321;
    msg.priority = 200;
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.array_id, 3);
    EXPECT_EQ(out.objective, 2);
    EXPECT_EQ(out.link_id, 5);
    EXPECT_EQ(out.searcher, 4);
    EXPECT_EQ(out.budget_us, 123456u);
    EXPECT_EQ(out.deadline_us, 654321u);
    EXPECT_EQ(out.priority, 200);
}

TEST(ServiceWire, OptimizeReplyRoundtrip) {
    OptimizeReply msg;
    msg.status = 1;
    msg.epoch = 9;
    msg.best_score_centi = -1234;
    msg.evaluations = 64;
    msg.queue_wait_us = 1500;
    msg.compute_us = 250;
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.status, 1);
    EXPECT_EQ(out.epoch, 9u);
    EXPECT_EQ(out.best_score_centi, -1234);
    EXPECT_EQ(out.evaluations, 64u);
    EXPECT_EQ(out.queue_wait_us, 1500u);
    EXPECT_EQ(out.compute_us, 250u);
}

TEST(ServiceWire, MutateAndRejectAndStatusRoundtrip) {
    MutateRequest mut;
    mut.array_id = 1;
    mut.element = 2;
    mut.state = 3;
    const auto mout = roundtrip(mut);
    EXPECT_EQ(mout.element, 2);
    EXPECT_EQ(mout.state, 3);

    MutateReply mrep;
    mrep.status = 1;
    mrep.epoch = 17;
    EXPECT_EQ(roundtrip(mrep).epoch, 17u);

    Reject rej;
    rej.reason = static_cast<std::uint8_t>(RejectReason::kExpired);
    rej.queue_depth = 12;
    const auto rout = roundtrip(rej);
    EXPECT_EQ(static_cast<RejectReason>(rout.reason),
              RejectReason::kExpired);
    EXPECT_EQ(rout.queue_depth, 12);

    (void)roundtrip(StatusRequest{});
    StatusReply status;
    status.epoch = 4;
    status.queue_depth = 2;
    status.served = 100;
    status.rejected = 5;
    status.expired = 1;
    const auto sout = roundtrip(status);
    EXPECT_EQ(sout.served, 100u);
    EXPECT_EQ(sout.expired, 1u);
}

TEST(ServiceWire, RejectReasonNames) {
    EXPECT_STREQ(to_string(RejectReason::kQueueFull), "queue-full");
    EXPECT_STREQ(to_string(RejectReason::kBackpressure), "backpressure");
}

TEST(ServiceWire, CorruptFrameIsCountedAndRejected) {
    obs::set_enabled(true);
    auto& counter =
        obs::MetricsRegistry::global().counter("wire.frames_corrupt");
    const std::uint64_t before = counter.value();
    auto frame = encode(Message{Hello{}}, 1);
    frame[frame.size() - 1] ^= 0xFF;  // break the CRC
    EXPECT_THROW((void)decode(frame), ProtocolError);
    EXPECT_EQ(counter.value(), before + 1);
    EXPECT_FALSE(frame_crc_ok(frame));
}

// ---- service core over a stub engine ----------------------------------

struct StubCounters {
    int optimizes = 0;
    int mutates = 0;
    int checkpoints = 0;
    int reverts = 0;
};

ServiceEngine stub_engine(std::shared_ptr<StubCounters> counters,
                          double sim_cost_s = 0.01, bool ok = true) {
    ServiceEngine engine;
    engine.optimize = [counters, sim_cost_s, ok](const OptimizeRequest&,
                                                 double) {
        ++counters->optimizes;
        EngineResult result;
        result.ok = ok;
        result.best_score = 12.5;
        result.evaluations = 8;
        result.sim_elapsed_s = sim_cost_s;
        result.compute_s = 20e-6;
        return result;
    };
    engine.mutate = [counters](const MutateRequest&) {
        ++counters->mutates;
        return true;
    };
    engine.checkpoint = [counters]() { ++counters->checkpoints; };
    engine.revert = [counters]() {
        ++counters->reverts;
        return true;
    };
    return engine;
}

/// Submits frames and decodes replies for one session.
struct TestClient {
    Service& service;
    Service::SessionId id;
    std::uint32_t next_seq = 1;

    explicit TestClient(Service& s) : service(s), id(s.connect()) {}

    std::uint32_t send(const Message& msg) {
        const std::uint32_t seq = next_seq++;
        service.submit(id, encode(msg, seq));
        return seq;
    }
    std::uint32_t send_optimize(std::uint8_t priority,
                                std::uint32_t deadline_us = 0) {
        OptimizeRequest req;
        req.priority = priority;
        req.deadline_us = deadline_us;
        return send(Message{req});
    }
    std::vector<Decoded> read() {
        std::vector<Decoded> out;
        for (const auto& frame : service.take_outgoing(id))
            out.push_back(decode(frame));
        return out;
    }
};

const Reject* find_reject(const std::vector<Decoded>& replies,
                          std::uint32_t seq) {
    for (const auto& d : replies)
        if (d.seq == seq)
            if (const auto* r = std::get_if<Reject>(&d.message)) return r;
    return nullptr;
}

TEST(Service, ServesAndRepliesWithTimingSplit) {
    auto counters = std::make_shared<StubCounters>();
    Service service(stub_engine(counters));
    TestClient client(service);

    const std::uint32_t hello_seq = client.send(Message{Hello{}});
    auto replies = client.read();
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].seq, hello_seq);
    EXPECT_NE(std::get_if<HelloAck>(&replies[0].message), nullptr);

    const std::uint32_t seq = client.send_optimize(128);
    EXPECT_TRUE(service.run_cycle());
    replies = client.read();
    ASSERT_EQ(replies.size(), 1u);
    const auto* reply = std::get_if<OptimizeReply>(&replies[0].message);
    ASSERT_NE(reply, nullptr);
    EXPECT_EQ(replies[0].seq, seq);
    EXPECT_EQ(reply->status, 0);
    EXPECT_EQ(reply->best_score_centi, 1250);
    // The timing split: compute time (stub: 20 us) is reported apart
    // from queue wait.
    EXPECT_EQ(reply->compute_us, 20u);
    EXPECT_EQ(counters->optimizes, 1);
    EXPECT_EQ(counters->checkpoints, 1);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, QueueFullRejectsNewcomersOfEqualPriority) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 4;
    options.shed_occupancy = 1.0;  // isolate the full-queue path
    Service service(stub_engine(counters), options);
    TestClient client(service);

    std::vector<std::uint32_t> seqs;
    for (int i = 0; i < 7; ++i) seqs.push_back(client.send_optimize(128));
    EXPECT_EQ(service.queue_depth(), 4u);
    EXPECT_EQ(service.stats().admitted, 4u);
    EXPECT_EQ(service.stats().queue_full, 3u);

    const auto replies = client.read();
    for (std::size_t i = 4; i < 7; ++i) {
        const Reject* reject = find_reject(replies, seqs[i]);
        ASSERT_NE(reject, nullptr);
        EXPECT_EQ(static_cast<RejectReason>(reject->reason),
                  RejectReason::kQueueFull);
    }
    EXPECT_TRUE(service.accounting_balanced());
    service.run_until_idle();
    EXPECT_EQ(service.stats().served, 4u);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, HigherPriorityEvictsLowestWhenFull) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 3;
    options.shed_occupancy = 1.0;
    Service service(stub_engine(counters), options);
    TestClient client(service);

    const std::uint32_t low = client.send_optimize(10);
    client.send_optimize(100);
    client.send_optimize(100);
    const std::uint32_t high = client.send_optimize(200);

    EXPECT_EQ(service.stats().evicted, 1u);
    EXPECT_EQ(service.stats().admitted, 4u);
    EXPECT_EQ(service.queue_depth(), 3u);
    const auto replies = client.read();
    const Reject* reject = find_reject(replies, low);
    ASSERT_NE(reject, nullptr);
    EXPECT_EQ(static_cast<RejectReason>(reject->reason),
              RejectReason::kQueueFull);
    EXPECT_TRUE(service.accounting_balanced());

    // The evictor runs first (highest priority).
    EXPECT_TRUE(service.run_cycle());
    bool saw_high_reply = false;
    for (const auto& d : client.read())
        if (d.seq == high &&
            std::get_if<OptimizeReply>(&d.message) != nullptr)
            saw_high_reply = true;
    EXPECT_TRUE(saw_high_reply);
}

TEST(Service, ShedsLowPriorityAboveOccupancyWatermark) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 8;
    options.shed_occupancy = 0.5;
    options.shed_priority_floor = 64;
    Service service(stub_engine(counters), options);
    TestClient client(service);

    for (int i = 0; i < 4; ++i) client.send_optimize(128);
    // Occupancy is now 0.5: a request below the floor is shed...
    const std::uint32_t shed_seq = client.send_optimize(10);
    EXPECT_EQ(service.stats().shed, 1u);
    // ...while one above the floor is admitted.
    client.send_optimize(128);
    EXPECT_EQ(service.stats().admitted, 5u);

    const auto replies = client.read();
    const Reject* reject = find_reject(replies, shed_seq);
    ASSERT_NE(reject, nullptr);
    EXPECT_EQ(static_cast<RejectReason>(reject->reason),
              RejectReason::kShed);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, DeadlineExpiresMidQueue) {
    auto counters = std::make_shared<StubCounters>();
    Service service(stub_engine(counters, /*sim_cost_s=*/0.01));
    TestClient client(service);

    // Low priority, generous deadline; high priority, tight deadline.
    const std::uint32_t relaxed = client.send_optimize(50, 1000000);
    const std::uint32_t tight = client.send_optimize(200, 5000);

    // 8 ms of sim time pass before the service gets to run: the tight
    // deadline (5 ms) is already unmeetable, the relaxed one is fine.
    service.advance_clock(0.008);
    EXPECT_TRUE(service.run_cycle());

    const auto replies = client.read();
    const Reject* reject = find_reject(replies, tight);
    ASSERT_NE(reject, nullptr);
    EXPECT_EQ(static_cast<RejectReason>(reject->reason),
              RejectReason::kExpired);
    bool relaxed_served = false;
    for (const auto& d : replies)
        if (d.seq == relaxed &&
            std::get_if<OptimizeReply>(&d.message) != nullptr)
            relaxed_served = true;
    EXPECT_TRUE(relaxed_served);
    EXPECT_EQ(service.stats().expired, 1u);
    EXPECT_EQ(service.stats().served, 1u);
    EXPECT_EQ(counters->optimizes, 1);  // the expired one never ran
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, SlowReaderGetsBackpressureThenDropped) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 64;
    options.outbox_capacity = 8;  // watermark = 6
    Service service(stub_engine(counters));
    Service slow_service(stub_engine(counters), options);
    TestClient client(slow_service);

    // The client never reads. Replies pile up in its outbox until the
    // watermark refuses new work, then the hard cap closes the session.
    bool saw_backpressure = false;
    for (int i = 0; i < 32 && slow_service.session_open(client.id); ++i) {
        client.send_optimize(128);
        slow_service.run_until_idle();
        if (slow_service.stats().backpressure > 0) saw_backpressure = true;
    }
    EXPECT_TRUE(saw_backpressure);
    EXPECT_FALSE(slow_service.session_open(client.id));
    EXPECT_EQ(slow_service.stats().sessions_dropped_slow, 1u);
    EXPECT_TRUE(slow_service.accounting_balanced());
}

TEST(Service, DuplicateSequenceIsRejected) {
    auto counters = std::make_shared<StubCounters>();
    Service service(stub_engine(counters));
    TestClient client(service);

    OptimizeRequest req;
    req.priority = 128;
    const auto frame = encode(Message{req}, 77);
    service.submit(client.id, frame);
    service.submit(client.id, frame);  // chaos duplicate / retransmission
    EXPECT_EQ(service.stats().admitted, 1u);
    EXPECT_EQ(service.stats().duplicates, 1u);
    const auto replies = client.read();
    const Reject* reject = find_reject(replies, 77);
    ASSERT_NE(reject, nullptr);
    EXPECT_EQ(static_cast<RejectReason>(reject->reason),
              RejectReason::kDuplicate);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, RetransmitAfterTransientRejectIsReevaluated) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 1;
    options.shed_occupancy = 1.0;
    Service service(stub_engine(counters), options);
    TestClient client(service);

    client.send_optimize(128);
    // Queue full: refused kQueueFull — a transient condition. Were the
    // seq recorded on first sight, a retransmission (say the Reject was
    // chaos-dropped) would be stonewalled with kDuplicate forever.
    OptimizeRequest req;
    req.priority = 128;
    const auto frame = encode(Message{req}, 55);
    service.submit(client.id, frame);
    EXPECT_EQ(service.stats().queue_full, 1u);
    (void)client.read();

    service.run_until_idle();  // drains the queue
    service.submit(client.id, frame);  // retransmission of seq 55
    EXPECT_EQ(service.stats().duplicates, 0u);
    EXPECT_EQ(service.stats().admitted, 2u);
    service.run_until_idle();
    EXPECT_EQ(service.stats().served, 2u);
    // An admitted seq still dedupes.
    service.submit(client.id, frame);
    EXPECT_EQ(service.stats().duplicates, 1u);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, EvictionSurvivesVictimOutboxOverflow) {
    // The eviction Reject can itself overflow the victim's outbox and
    // close that session, which purges the victim's other queue entries
    // mid-eviction. The ledger must stay balanced (evicted once, the
    // sibling entry dropped_closed once) and nothing may crash.
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 2;
    options.outbox_capacity = 2;
    options.shed_occupancy = 1.0;
    Service service(stub_engine(counters), options);
    TestClient victim(service);
    TestClient evictor(service);

    // Two queued requests, then fill the victim's outbox to capacity
    // with duplicate-rejects (duplicates bypass the admission path).
    OptimizeRequest req;
    req.priority = 10;
    const auto frame = encode(Message{req}, 100);
    service.submit(victim.id, frame);
    victim.send_optimize(10);
    EXPECT_EQ(service.queue_depth(), 2u);
    service.submit(victim.id, frame);
    service.submit(victim.id, frame);
    EXPECT_EQ(service.outbox_depth(victim.id), 2u);

    // The eviction: its Reject overflows the outbox -> session closed.
    evictor.send_optimize(200);
    EXPECT_FALSE(service.session_open(victim.id));
    EXPECT_EQ(service.stats().evicted, 1u);
    EXPECT_EQ(service.stats().dropped_closed, 1u);
    EXPECT_EQ(service.queue_depth(), 1u);
    EXPECT_TRUE(service.accounting_balanced());
    service.run_until_idle();
    EXPECT_EQ(service.stats().served, 1u);  // the evictor's request
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, ExpirySurvivesFullOutboxSessionClose) {
    // Same reentrancy hazard on the expiry path: the kExpired Reject
    // closes the session, purging its remaining queue entry while
    // pop_next scans. One expired, one dropped_closed, no double count.
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.outbox_capacity = 2;
    Service service(stub_engine(counters), options);
    TestClient client(service);

    OptimizeRequest req;
    req.priority = 128;
    req.deadline_us = 1000;
    const auto frame = encode(Message{req}, 100);
    service.submit(client.id, frame);
    client.send_optimize(128, 1000);
    service.submit(client.id, frame);
    service.submit(client.id, frame);
    EXPECT_EQ(service.outbox_depth(client.id), 2u);

    service.advance_clock(0.01);  // both deadlines pass
    (void)service.run_cycle();
    EXPECT_FALSE(service.session_open(client.id));
    EXPECT_EQ(service.stats().expired, 1u);
    EXPECT_EQ(service.stats().dropped_closed, 1u);
    EXPECT_EQ(service.queue_depth(), 0u);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, SessionIdsSkipLiveSessionsOnWrap) {
    auto counters = std::make_shared<StubCounters>();
    Service service(stub_engine(counters));
    const auto held = service.connect();
    // Walk next_session_ through the full u16 space and past the wrap:
    // every id handed out must be fresh — never 0, never the held one.
    for (int i = 0; i < 66000; ++i) {
        const auto id = service.connect();
        ASSERT_NE(id, held);
        ASSERT_NE(id, 0);
        service.disconnect(id);
    }
    EXPECT_TRUE(service.session_open(held));
}

TEST(Service, PriorityCapFromHelloClampsRequests) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 2;
    options.shed_occupancy = 1.0;
    options.shed_priority_floor = 0;  // isolate the eviction path
    Service service(stub_engine(counters), options);
    TestClient capped(service);
    TestClient normal(service);

    Hello hello;
    hello.priority_cap = 5;
    capped.send(Message{hello});
    (void)capped.read();

    normal.send_optimize(50);
    normal.send_optimize(50);
    // Nominal priority 255, but the cap makes it 5 — too weak to evict.
    const std::uint32_t seq = capped.send_optimize(255);
    EXPECT_EQ(service.stats().queue_full, 1u);
    const auto replies = capped.read();
    const Reject* reject = find_reject(replies, seq);
    ASSERT_NE(reject, nullptr);
}

TEST(Service, DisconnectAccountsQueuedRequests) {
    auto counters = std::make_shared<StubCounters>();
    Service service(stub_engine(counters));
    TestClient client(service);
    client.send_optimize(128);
    client.send_optimize(128);
    EXPECT_EQ(service.queue_depth(), 2u);
    service.disconnect(client.id);
    EXPECT_EQ(service.queue_depth(), 0u);
    EXPECT_EQ(service.stats().dropped_closed, 2u);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, WatchdogDumpsRevertsAndKeepsServing) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.inject_stall_every = 2;  // every 2nd request stalls
    Service service(stub_engine(counters), options);
    TestClient client(service);

    const std::uint32_t first = client.send_optimize(128);
    const std::uint32_t second = client.send_optimize(128);
    service.run_until_idle();

    EXPECT_EQ(service.stats().watchdog_trips, 1u);
    EXPECT_GE(service.stats().flight_dumps, 1u);
    EXPECT_EQ(counters->reverts, 1);
    EXPECT_EQ(service.stats().served, 2u);  // degraded is still served

    const auto replies = client.read();
    std::uint8_t first_status = 0xFF, second_status = 0xFF;
    for (const auto& d : replies) {
        if (const auto* r = std::get_if<OptimizeReply>(&d.message)) {
            if (d.seq == first) first_status = r->status;
            if (d.seq == second) second_status = r->status;
        }
    }
    EXPECT_EQ(first_status, 0);   // healthy cycle
    EXPECT_EQ(second_status, 1);  // the stalled one, answered degraded
    EXPECT_TRUE(service.accounting_balanced());

    // The service survives its own recovery: a third request is served.
    client.send_optimize(128);
    service.run_until_idle();
    EXPECT_EQ(service.stats().served, 3u);
}

TEST(Service, SimTimeOverrunTripsWatchdog) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.watchdog_cycle_s = 0.5;
    // A cycle that eats 2 simulated seconds is stuck by definition.
    Service service(stub_engine(counters, /*sim_cost_s=*/2.0), options);
    TestClient client(service);
    client.send_optimize(128);
    service.run_until_idle();
    EXPECT_EQ(service.stats().watchdog_trips, 1u);
    EXPECT_EQ(counters->reverts, 1);
}

// ---- epochs over the real engine ---------------------------------------

TEST(Service, EpochIsolatesMutationsFromOptimizeCycles) {
    auto scenario = core::make_link_scenario(11, /*line_of_sight=*/false);
    core::ServeConfig serve_config;
    ServiceEngine engine =
        core::make_service_engine(scenario.system, serve_config);
    const auto revision_probe = engine.scene_revision;
    Service service(std::move(engine));
    TestClient client(service);

    const std::uint64_t epoch0 = service.epoch();
    const std::uint64_t revision0 = revision_probe();

    OptimizeRequest opt;
    opt.array_id = static_cast<std::uint16_t>(scenario.array_id);
    opt.link_id = static_cast<std::uint16_t>(scenario.link_id);
    opt.budget_us = 2000;
    const std::uint32_t opt_seq = client.send(Message{opt});

    MutateRequest mut;
    mut.array_id = static_cast<std::uint16_t>(scenario.array_id);
    mut.element = 0;
    mut.state = 1;
    const std::uint32_t mut_seq = client.send(Message{mut});

    // One cycle: the optimize executes against the frozen scene (the
    // service asserts scene_revision stability internally), THEN the
    // mutation lands and the epoch advances.
    EXPECT_TRUE(service.run_cycle());

    const auto replies = client.read();
    const OptimizeReply* opt_reply = nullptr;
    const MutateReply* mut_reply = nullptr;
    for (const auto& d : replies) {
        if (d.seq == opt_seq)
            opt_reply = std::get_if<OptimizeReply>(&d.message);
        if (d.seq == mut_seq)
            mut_reply = std::get_if<MutateReply>(&d.message);
    }
    ASSERT_NE(opt_reply, nullptr);
    ASSERT_NE(mut_reply, nullptr);
    // The optimize saw the pre-mutation epoch; the mutation named the
    // epoch it created.
    EXPECT_EQ(opt_reply->epoch, epoch0);
    EXPECT_EQ(mut_reply->status, 0);
    EXPECT_EQ(mut_reply->epoch, epoch0 + 1);
    EXPECT_EQ(service.epoch(), epoch0 + 1);
    // The landed mutation moved the scene revision; the array state
    // reflects it.
    EXPECT_NE(revision_probe(), revision0);
    EXPECT_EQ(
        scenario.system.medium().array(scenario.array_id).current_config()[0],
        1);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, BadRequestsAreRejectedByValidation) {
    auto scenario = core::make_link_scenario(12, /*line_of_sight=*/false);
    Service service(core::make_service_engine(scenario.system));
    TestClient client(service);

    OptimizeRequest bad;
    bad.array_id = 99;  // no such array
    const std::uint32_t seq = client.send(Message{bad});
    EXPECT_EQ(service.stats().bad_requests, 1u);
    const auto replies = client.read();
    const Reject* reject = find_reject(replies, seq);
    ASSERT_NE(reject, nullptr);
    EXPECT_EQ(static_cast<RejectReason>(reject->reason),
              RejectReason::kBadRequest);

    MutateRequest bad_mut;
    bad_mut.array_id = static_cast<std::uint16_t>(scenario.array_id);
    bad_mut.element = 999;
    client.send(Message{bad_mut});
    EXPECT_EQ(service.stats().bad_requests, 2u);
}

// ---- introspection plane -----------------------------------------------

TEST(ServiceWire, SubscribeRoundtrip) {
    Subscribe msg;
    msg.prefix = "service.";
    msg.interval_us = 250000;
    msg.flags = kSubscribeExemplars;
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.prefix, "service.");
    EXPECT_EQ(out.interval_us, 250000u);
    EXPECT_EQ(out.flags, kSubscribeExemplars);
}

TEST(ServiceWire, TelemetryFrameRoundtrip) {
    TelemetryFrame msg;
    msg.revision = 0xDEADBEEFCAFEull;
    msg.payload = "{\"schema\": \"press.timeseries/v1\"}";
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.revision, 0xDEADBEEFCAFEull);
    EXPECT_EQ(out.payload, msg.payload);
}

TEST(ServiceWire, FlightTapRoundtripAndReasonNames) {
    FlightTap msg;
    msg.reason = static_cast<std::uint8_t>(FlightTapReason::kSloBurn);
    msg.revision = 77;
    msg.path = "flight_service_slo_burn.json";
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.reason, msg.reason);
    EXPECT_EQ(out.revision, 77u);
    EXPECT_EQ(out.path, msg.path);
    EXPECT_STREQ(to_string(FlightTapReason::kWatchdog), "watchdog");
    EXPECT_STREQ(to_string(FlightTapReason::kSloBurn), "slo-burn");
}

TEST(ServiceWire, StatusReplyCarriesUptimeAndRevision) {
    StatusReply msg;
    msg.queue_depth = 3;
    msg.uptime_s = 12.345;
    msg.revision = 42;
    const auto out = roundtrip(msg);
    EXPECT_EQ(out.queue_depth, 3u);
    // Uptime rides the wire at millisecond resolution.
    EXPECT_NEAR(out.uptime_s, 12.345, 0.001);
    EXPECT_EQ(out.revision, 42u);
}

std::vector<const TelemetryFrame*> telemetry_frames(
    const std::vector<Decoded>& replies) {
    std::vector<const TelemetryFrame*> out;
    for (const auto& d : replies)
        if (const auto* tf = std::get_if<TelemetryFrame>(&d.message))
            out.push_back(tf);
    return out;
}

TEST(Service, SubscriptionStreamsValidFramesAtCadence) {
    obs::set_enabled(true);
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.telemetry.interval_s = 0.5;
    Service service(stub_engine(counters), options);
    TestClient client(service);
    client.send(Message{Hello{}});
    (void)client.read();

    Subscribe sub;
    sub.interval_us = 500000;
    client.send(Message{sub});
    auto replies = client.read();
    // The subscription is acked immediately with the newest frame.
    auto frames = telemetry_frames(replies);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_TRUE(obs::validate_timeseries(obs::Json::parse(frames[0]->payload))
                    .empty());
    EXPECT_EQ(service.stats().subscriptions, 1u);

    for (int i = 0; i < 3; ++i) {
        service.advance_clock(0.5);
        (void)service.run_cycle();
    }
    replies = client.read();
    frames = telemetry_frames(replies);
    ASSERT_EQ(frames.size(), 3u);
    std::uint64_t last_revision = 0;
    for (const auto* tf : frames) {
        EXPECT_GT(tf->revision, last_revision);
        last_revision = tf->revision;
        const obs::Json doc = obs::Json::parse(tf->payload);
        EXPECT_TRUE(obs::validate_timeseries(doc).empty());
        // Service-injected liveness keys ride every pushed frame.
        EXPECT_TRUE(doc.contains("queue_depth"));
        EXPECT_TRUE(doc.contains("sessions"));
    }
    EXPECT_EQ(service.stats().telemetry_frames_sent, 4u);
    EXPECT_EQ(service.telemetry_revision(), last_revision);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, SubscribeWithTelemetryOffIsRejected) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.telemetry.interval_s = 0.0;  // introspection plane disabled
    Service service(stub_engine(counters), options);
    TestClient client(service);
    client.send(Message{Hello{}});
    (void)client.read();

    const std::uint32_t seq = client.send(Message{Subscribe{}});
    const auto replies = client.read();
    const Reject* reject = find_reject(replies, seq);
    ASSERT_NE(reject, nullptr);
    EXPECT_EQ(static_cast<RejectReason>(reject->reason),
              RejectReason::kBadRequest);
    EXPECT_EQ(service.stats().subscriptions, 0u);
}

TEST(Service, UnsubscribeSendsFinalFrameAndStopsStream) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.telemetry.interval_s = 0.5;
    Service service(stub_engine(counters), options);
    TestClient client(service);
    client.send(Message{Hello{}});
    (void)client.read();
    client.send(Message{Subscribe{}});
    (void)client.read();  // ack frame

    Subscribe cancel;
    cancel.interval_us = 0;
    client.send(Message{cancel});
    auto frames = telemetry_frames(client.read());
    ASSERT_EQ(frames.size(), 1u);  // the final frame

    for (int i = 0; i < 3; ++i) {
        service.advance_clock(0.5);
        (void)service.run_cycle();
    }
    EXPECT_TRUE(telemetry_frames(client.read()).empty());
}

TEST(Service, SlowSubscriberDropsOldestTelemetryNotReplies) {
    obs::set_enabled(true);
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.telemetry.interval_s = 0.25;
    options.outbox_capacity = 8;
    Service service(stub_engine(counters), options);

    // The watcher subscribes and then never reads a single frame.
    TestClient watcher(service);
    watcher.send(Message{Hello{}});
    Subscribe sub;
    sub.interval_us = 250000;
    watcher.send(Message{sub});

    // A concurrent client keeps working while the watcher stalls.
    TestClient worker(service);
    worker.send(Message{Hello{}});
    (void)worker.read();

    std::size_t worker_replies = 0;
    for (int i = 0; i < 64; ++i) {
        worker.send_optimize(128, 5'000'000);  // outlives the clock walk
        service.advance_clock(0.25);
        service.run_until_idle();
        for (const auto& d : worker.read())
            if (std::get_if<OptimizeReply>(&d.message) != nullptr)
                ++worker_replies;
    }

    // Telemetry hit the watermark and dropped oldest-first — visibly.
    EXPECT_GT(service.stats().telemetry_frames_dropped, 0u);
    // The stalled subscriber is throttled, not executed: its session
    // stays open and its outbox stays bounded.
    EXPECT_TRUE(service.session_open(watcher.id));
    EXPECT_LE(service.outbox_depth(watcher.id), options.outbox_capacity);
    // Every optimize made its deadline; no reply was displaced.
    EXPECT_EQ(worker_replies, 64u);
    EXPECT_EQ(service.stats().sessions_dropped_slow, 0u);
    EXPECT_TRUE(service.accounting_balanced());

    // Once the watcher finally drains, the newest frames are intact and
    // strictly ordered by revision.
    const auto frames = telemetry_frames(watcher.read());
    ASSERT_GT(frames.size(), 0u);
    std::uint64_t last_revision = 0;
    for (const auto* tf : frames) {
        EXPECT_GT(tf->revision, last_revision);
        last_revision = tf->revision;
    }
}

TEST(Service, SloBurnBurstAlarmsAndTapsSubscriber) {
    obs::set_enabled(true);
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 16;
    options.telemetry.interval_s = 0.25;
    Service service(stub_engine(counters), options);

    TestClient watcher(service);
    watcher.send(Message{Hello{}});
    watcher.send(Message{Subscribe{}});  // default flags include taps
    (void)watcher.read();

    // Sixteen requests expire in-queue: a 100% miss window, far past
    // the 10x burn alarm with the 1% default miss budget.
    TestClient burst(service);
    burst.send(Message{Hello{}});
    for (int i = 0; i < 16; ++i)
        burst.send_optimize(128, /*deadline_us=*/100);
    service.advance_clock(1.0);
    service.run_until_idle();

    EXPECT_EQ(service.stats().expired, 16u);
    EXPECT_GE(service.stats().slo_alarms, 1u);
    EXPECT_GE(service.stats().flight_taps, 1u);

    const auto replies = watcher.read();
    const FlightTap* tap = nullptr;
    double burn = 0.0;
    for (const auto& d : replies) {
        if (const auto* t = std::get_if<FlightTap>(&d.message)) tap = t;
        if (const auto* tf = std::get_if<TelemetryFrame>(&d.message)) {
            const obs::Json doc = obs::Json::parse(tf->payload);
            EXPECT_TRUE(obs::validate_timeseries(doc).empty());
            if (doc.contains("gauges") &&
                doc.at("gauges").contains("service.slo.burn_rate"))
                burn = std::max(
                    burn,
                    doc.at("gauges").at("service.slo.burn_rate").as_double());
        }
    }
    ASSERT_NE(tap, nullptr);
    EXPECT_EQ(static_cast<FlightTapReason>(tap->reason),
              FlightTapReason::kSloBurn);
    EXPECT_FALSE(tap->path.empty());
    EXPECT_GT(burn, 1.0);
    EXPECT_TRUE(service.accounting_balanced());
}

TEST(Service, StatusReportsUptimeAndAdvancingRevision) {
    obs::set_enabled(true);
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.telemetry.interval_s = 0.5;
    Service service(stub_engine(counters), options);
    TestClient client(service);
    client.send(Message{Hello{}});
    (void)client.read();

    service.advance_clock(2.0);
    (void)service.run_cycle();  // one sampler window closes
    client.send(Message{StatusRequest{}});
    auto replies = client.read();
    ASSERT_EQ(replies.size(), 1u);
    const auto* status = std::get_if<StatusReply>(&replies[0].message);
    ASSERT_NE(status, nullptr);
    EXPECT_NEAR(status->uptime_s, 2.0, 1e-3);
    EXPECT_GE(status->revision, 1u);

    // The revision is monotonic: more windows, larger revision — the
    // restart-detection contract documented in docs/SERVICE.md.
    service.advance_clock(1.0);
    (void)service.run_cycle();
    client.send(Message{StatusRequest{}});
    replies = client.read();
    ASSERT_EQ(replies.size(), 1u);
    const auto* later = std::get_if<StatusReply>(&replies[0].message);
    ASSERT_NE(later, nullptr);
    EXPECT_GT(later->revision, status->revision);
    EXPECT_GT(later->uptime_s, status->uptime_s);
}

// ---- chaos link --------------------------------------------------------

TEST(ChaosLink, CleanLinkIsFifoAndLossless) {
    fault::ChaosLink link({}, util::Rng(1));
    link.send({1}, 0.0);
    link.send({2}, 0.0);
    const auto out = link.deliver(0.0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0][0], 1);
    EXPECT_EQ(out[1][0], 2);
    EXPECT_EQ(link.stats().reordered, 0u);
}

TEST(ChaosLink, DropsAtConfiguredRate) {
    fault::ChaosOptions options;
    options.drop_rate = 0.5;
    fault::ChaosLink link(options, util::Rng(2));
    for (int i = 0; i < 400; ++i) link.send({0xAB}, 0.0);
    const auto delivered = link.deliver(0.0);
    EXPECT_GT(link.stats().dropped, 140u);
    EXPECT_LT(link.stats().dropped, 260u);
    EXPECT_EQ(delivered.size() + link.stats().dropped, 400u);
}

TEST(ChaosLink, DelayDefersDelivery) {
    fault::ChaosOptions options;
    options.delay_rate = 1.0;
    options.delay_min_s = 1e-3;
    options.delay_max_s = 2e-3;
    fault::ChaosLink link(options, util::Rng(3));
    link.send({7}, 0.0);
    EXPECT_TRUE(link.deliver(0.0).empty());
    EXPECT_EQ(link.in_flight(), 1u);
    const auto late = link.deliver(0.01);
    ASSERT_EQ(late.size(), 1u);
    EXPECT_EQ(link.stats().delayed, 1u);
}

TEST(ChaosLink, CorruptionFlipsBitsAndIsCounted) {
    fault::ChaosOptions options;
    options.corrupt_rate = 1.0;
    fault::ChaosLink link(options, util::Rng(4));
    const std::vector<std::uint8_t> original(32, 0x00);
    link.send(original, 0.0);
    const auto out = link.deliver(0.0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0], original);
    EXPECT_EQ(link.stats().corrupted, 1u);
}

TEST(ChaosLink, ReorderHoldsFramesBack) {
    fault::ChaosOptions options;
    options.reorder_rate = 0.5;
    fault::ChaosLink link(options, util::Rng(5));
    // Frames 0.1 ms apart: a held-back frame (5-10 ms) is overtaken by
    // dozens of successors.
    for (int i = 0; i < 100; ++i)
        link.send({static_cast<std::uint8_t>(i)}, i * 1e-4);
    (void)link.deliver(1000.0);
    EXPECT_GT(link.stats().reordered, 0u);
}

TEST(ChaosLink, SeverLosesInFlightUntilReconnect) {
    fault::ChaosOptions options;
    options.disconnect_rate = 1.0;  // severs on the first send
    fault::ChaosLink link(options, util::Rng(6));
    link.send({1}, 0.0);
    EXPECT_TRUE(link.severed());
    link.send({2}, 0.0);  // lost: the wire is down
    EXPECT_TRUE(link.deliver(10.0).empty());
    EXPECT_EQ(link.stats().severed_loss, 2u);
    link.reconnect();
    EXPECT_FALSE(link.severed());
}

TEST(ChaosLink, AccountingCoversEveryFrame) {
    fault::ChaosLink link(fault::ChaosOptions::uniform(0.2), util::Rng(7));
    for (int i = 0; i < 500; ++i)
        link.send({static_cast<std::uint8_t>(i)}, i * 1e-3);
    const auto delivered = link.deliver(1e9);
    const auto& s = link.stats();
    // Every offered frame is delivered, dropped, or severed — and
    // duplicates add to deliveries. Nothing vanishes unaccounted.
    EXPECT_EQ(delivered.size(), s.delivered);
    EXPECT_EQ(s.sent + s.duplicated,
              s.delivered + s.dropped + s.severed_loss + link.in_flight());
}

// ---- chaos soak against the service ------------------------------------

TEST(Service, ChaosSoakBalancesTheLedger) {
    auto counters = std::make_shared<StubCounters>();
    ServiceOptions options;
    options.queue_capacity = 8;
    Service service(stub_engine(counters, /*sim_cost_s=*/0.002), options);
    fault::ChaosLink to_service(fault::ChaosOptions::uniform(0.15),
                                util::Rng(8));

    const auto session = service.connect();
    double now = 0.0;
    std::uint32_t seq = 1;
    for (int i = 0; i < 300; ++i) {
        now += 1e-3;
        service.advance_clock(1e-3);
        OptimizeRequest req;
        req.priority = static_cast<std::uint8_t>(i % 256);
        req.deadline_us = 20000;
        to_service.send(encode(Message{req}, seq++, {}), now);
        if (to_service.severed()) to_service.reconnect();
        for (const auto& frame : to_service.deliver(now))
            service.submit(session, frame);
        service.run_cycle();
        (void)service.take_outgoing(session);
    }
    service.run_until_idle();
    EXPECT_GT(service.stats().admitted, 0u);
    EXPECT_TRUE(service.accounting_balanced());
}

// ---- decorrelated retry backoff ----------------------------------------

surface::Array make_test_array() {
    surface::Array array;
    for (int i = 0; i < 3; ++i) {
        array.add_element(surface::Element::sp4t_prototype(
            {1.0 + i, 0, 1}, em::Antenna::omni(12.0), 2.462e9));
    }
    return array;
}

TEST(Backoff, DecorrelatedJitterStaysWithinBounds) {
    surface::Array array = make_test_array();
    ArrayAgent agent(array, 0);
    // A downlink that drops everything: every attempt retries, so the
    // session walks the full backoff ladder and then gives up.
    ReliableSession session(agent, LossyChannel(0.0, 0.99, util::Rng(9)),
                            LossyChannel(0.0, 0.0, util::Rng(10)),
                            /*max_retries=*/12);
    BackoffPolicy policy;
    policy.base_s = 1e-3;
    policy.max_s = 50e-3;
    policy.jitter = BackoffPolicy::Jitter::kDecorrelated;
    session.set_backoff(policy, util::Rng(11));

    (void)session.apply(0, {0, 0, 0});
    const auto& stats = session.stats();
    ASSERT_GE(stats.attempts, 10u);
    // 12 retries, each waiting within [base, max]: the total is bounded
    // by those envelopes.
    EXPECT_GE(stats.backoff_s, 12 * policy.base_s);
    EXPECT_LE(stats.backoff_s, 12 * policy.max_s);
    // Decorrelated waits deviate from the nominal exponential ladder;
    // the deviation is what retry_jitter_s tracks.
    EXPECT_GT(stats.retry_jitter_s, 0.0);
}

TEST(Backoff, DecorrelatedStreamsDiverge) {
    // Two sessions with identical policies but different rng streams
    // must not retry in lockstep — the point of decorrelation.
    surface::Array array_a = make_test_array();
    surface::Array array_b = make_test_array();
    ArrayAgent agent_a(array_a, 0);
    ArrayAgent agent_b(array_b, 0);
    ReliableSession sa(agent_a, LossyChannel(0.0, 0.99, util::Rng(12)),
                       LossyChannel(0.0, 0.0, util::Rng(13)), 10);
    ReliableSession sb(agent_b, LossyChannel(0.0, 0.99, util::Rng(12)),
                       LossyChannel(0.0, 0.0, util::Rng(13)), 10);
    BackoffPolicy policy;
    policy.base_s = 1e-3;
    policy.max_s = 100e-3;
    policy.jitter = BackoffPolicy::Jitter::kDecorrelated;
    sa.set_backoff(policy, util::Rng(100));
    sb.set_backoff(policy, util::Rng(200));
    (void)sa.apply(0, {0, 0, 0});
    (void)sb.apply(0, {0, 0, 0});
    EXPECT_NE(sa.stats().backoff_s, sb.stats().backoff_s);
}

TEST(Backoff, FullJitterIsCappedAtMax) {
    BackoffPolicy policy;
    policy.base_s = 1e-3;
    policy.factor = 2.0;
    policy.max_s = 8e-3;
    // The nominal ladder caps at max_s.
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(1), 1e-3);
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(4), 8e-3);
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(10), 8e-3);
}

}  // namespace
}  // namespace press::control
