// Tests for the multi-link scheduler (agility vs. joint optimization) and
// the Saleh-Valenzuela statistical substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "control/scheduler.hpp"
#include "core/experiments.hpp"
#include "em/channel.hpp"
#include "em/statistical.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace press {
namespace {

// ------------------------------------------------------------ scheduler

// A synthetic world where the scheduler's behaviour is fully predictable:
// link l scores 10 when element l's state matches l, else 1; the joint
// optimum sets every element to its link's preferred state.
double synthetic_eval(std::size_t link, const surface::Config& c) {
    return c[link] == static_cast<int>(link) ? 10.0 : 1.0;
}

TEST(Scheduler, PerLinkFindsEachOptimum) {
    const surface::ConfigSpace space({3, 3, 3});
    const control::MultiLinkScheduler scheduler(
        control::ControlPlaneModel::fast(), 10e-3);
    util::Rng rng(1);
    const auto outcome = scheduler.run(
        control::MultiLinkStrategy::kPerLink, space, synthetic_eval, 3,
        control::ExhaustiveSearcher(), 27, rng);
    ASSERT_EQ(outcome.configs.size(), 3u);
    for (std::size_t l = 0; l < 3; ++l)
        EXPECT_EQ(outcome.configs[l][l], static_cast<int>(l));
    EXPECT_DOUBLE_EQ(outcome.mean_raw_score, 10.0);
    EXPECT_LT(outcome.airtime_fraction, 1.0);
    EXPECT_GT(outcome.airtime_fraction, 0.0);
}

TEST(Scheduler, JointCompromisesWithoutOverhead) {
    const surface::ConfigSpace space({3, 3, 3});
    const control::MultiLinkScheduler scheduler(
        control::ControlPlaneModel::fast(), 10e-3);
    util::Rng rng(2);
    const auto outcome = scheduler.run(
        control::MultiLinkStrategy::kJoint, space, synthetic_eval, 3,
        control::ExhaustiveSearcher(), 27, rng);
    // In this separable world the joint optimum satisfies every link.
    EXPECT_DOUBLE_EQ(outcome.mean_raw_score, 10.0);
    EXPECT_DOUBLE_EQ(outcome.airtime_fraction, 1.0);
    EXPECT_EQ(outcome.configs[0], outcome.configs[1]);
    EXPECT_EQ(outcome.configs[1], outcome.configs[2]);
}

TEST(Scheduler, StaticOffUsesLastState) {
    const surface::ConfigSpace space({4, 4});
    const control::MultiLinkScheduler scheduler(
        control::ControlPlaneModel::fast(), 10e-3);
    util::Rng rng(3);
    const auto outcome = scheduler.run(
        control::MultiLinkStrategy::kStaticOff, space,
        [](std::size_t, const surface::Config& c) {
            return c == surface::Config{3, 3} ? 7.0 : 0.0;
        },
        2, control::ExhaustiveSearcher(), 16, rng);
    EXPECT_DOUBLE_EQ(outcome.mean_raw_score, 7.0);
    EXPECT_EQ(outcome.evaluations, 0u);
}

TEST(Scheduler, ShortSlotsKillPerLinkAgility) {
    const surface::ConfigSpace space({3, 3, 3});
    util::Rng rng(4);
    const double overhead =
        control::MultiLinkScheduler(control::ControlPlaneModel::fast(),
                                    1.0)
            .reconfiguration_time_s(space);
    // A slot shorter than the reconfiguration time leaves no airtime.
    const control::MultiLinkScheduler tight(
        control::ControlPlaneModel::fast(), overhead * 0.5);
    const auto outcome = tight.run(
        control::MultiLinkStrategy::kPerLink, space, synthetic_eval, 3,
        control::ExhaustiveSearcher(), 27, rng);
    EXPECT_DOUBLE_EQ(outcome.airtime_fraction, 0.0);
    EXPECT_DOUBLE_EQ(outcome.mean_effective_score, 0.0);
}

TEST(Scheduler, EffectiveScoreIsRawTimesAirtime) {
    const surface::ConfigSpace space({3, 3});
    const control::MultiLinkScheduler scheduler(
        control::ControlPlaneModel::prototype(), 50e-3);
    util::Rng rng(5);
    const auto outcome = scheduler.run(
        control::MultiLinkStrategy::kPerLink, space,
        [](std::size_t, const surface::Config&) { return 4.0; }, 2,
        control::RandomSearcher(), 5, rng);
    EXPECT_NEAR(outcome.mean_effective_score,
                outcome.mean_raw_score * outcome.airtime_fraction, 1e-12);
}

TEST(Scheduler, InvalidArgumentsThrow) {
    EXPECT_THROW(control::MultiLinkScheduler(
                     control::ControlPlaneModel::fast(), 0.0),
                 util::ContractViolation);
    const control::MultiLinkScheduler scheduler(
        control::ControlPlaneModel::fast(), 1e-3);
    const surface::ConfigSpace space({2});
    util::Rng rng(6);
    EXPECT_THROW(scheduler.run(control::MultiLinkStrategy::kJoint, space,
                               synthetic_eval, 0,
                               control::ExhaustiveSearcher(), 4, rng),
                 util::ContractViolation);
}

// ---------------------------------------------------- saleh-valenzuela

TEST(SalehValenzuela, DeterministicPerSeed) {
    em::SalehValenzuelaParams p;
    util::Rng a(11);
    util::Rng b(11);
    const auto pa = em::saleh_valenzuela_paths(p, a);
    const auto pb = em::saleh_valenzuela_paths(p, b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].delay_s, pb[i].delay_s);
        EXPECT_EQ(pa[i].gain, pb[i].gain);
    }
}

TEST(SalehValenzuela, DelaysWithinTruncation) {
    em::SalehValenzuelaParams p;
    util::Rng rng(12);
    for (const em::Path& path : em::saleh_valenzuela_paths(p, rng)) {
        EXPECT_GE(path.delay_s, p.excess_delay_s);
        EXPECT_LE(path.delay_s, p.excess_delay_s + p.max_delay_s + 1e-12);
        EXPECT_NEAR(path.departure.norm(), 1.0, 1e-9);
        EXPECT_NEAR(path.arrival.norm(), 1.0, 1e-9);
    }
}

TEST(SalehValenzuela, PowerDecaysWithDelay) {
    // Average many realizations: early paths must carry more power than
    // late ones (the doubly exponential profile).
    em::SalehValenzuelaParams p;
    util::Rng rng(13);
    double early = 0.0;
    double late = 0.0;
    for (int r = 0; r < 200; ++r) {
        for (const em::Path& path : em::saleh_valenzuela_paths(p, rng)) {
            const double t = path.delay_s - p.excess_delay_s;
            if (t < 50e-9)
                early += std::norm(path.gain);
            else if (t > 200e-9)
                late += std::norm(path.gain);
        }
    }
    EXPECT_GT(early, late * 3.0);
}

TEST(SalehValenzuela, RealisticDelaySpread) {
    em::SalehValenzuelaParams p;
    util::Rng rng(14);
    std::vector<double> spreads;
    for (int r = 0; r < 50; ++r)
        spreads.push_back(
            em::rms_delay_spread(em::saleh_valenzuela_paths(p, rng)));
    // Office-environment fits give tens of ns RMS delay spread.
    const double med = util::median(spreads);
    EXPECT_GT(med, 15e-9);
    EXPECT_LT(med, 150e-9);
}

TEST(SalehValenzuela, InvalidParamsThrow) {
    em::SalehValenzuelaParams p;
    p.cluster_rate_hz = 0.0;
    util::Rng rng(15);
    EXPECT_THROW(em::saleh_valenzuela_paths(p, rng),
                 util::ContractViolation);
}

TEST(SvScenario, BehavesLikeAStudyScenario) {
    core::LinkScenario scenario = core::make_sv_link_scenario(7);
    EXPECT_EQ(scenario.system.medium().ofdm().num_used(), 52u);
    const auto snr = scenario.system.true_snr_db(scenario.link_id);
    // Frequency selective, sane level.
    EXPECT_GT(util::max_value(snr) - util::min_value(snr), 3.0);
    EXPECT_GT(util::mean(snr), 5.0);
    EXPECT_LT(util::mean(snr), 70.0);
    // The array still has leverage on this substrate.
    EXPECT_GT(core::max_true_swing_db(scenario), 3.0);
}

TEST(SvScenario, StaticPathsAppearInTrace) {
    em::Environment env;
    em::SalehValenzuelaParams p;
    util::Rng rng(16);
    const auto sv = em::saleh_valenzuela_paths(p, rng);
    env.add_static_paths(sv);
    em::RadiatingEndpoint tx{{0, 0, 0}, em::Antenna::omni(0.0), {}};
    em::RadiatingEndpoint rx{{5, 0, 0}, em::Antenna::omni(0.0), {}};
    const auto paths = env.trace(tx, rx, 2.4e9);
    EXPECT_EQ(paths.size(), 1u + sv.size());  // direct + diffuse
    env.clear_static_paths();
    EXPECT_EQ(env.trace(tx, rx, 2.4e9).size(), 1u);
}

}  // namespace
}  // namespace press
