// Cross-module integration tests: the paper's headline behaviours
// end-to-end, the time-domain/frequency-domain cross-check on a full
// scenario, and a wire-protocol round trip driving a live array.
#include <gtest/gtest.h>

#include <cmath>

#include "control/controller.hpp"
#include "control/message.hpp"
#include "control/objective.hpp"
#include "control/search.hpp"
#include "core/experiments.hpp"
#include "core/scenarios.hpp"
#include "phy/rate.hpp"
#include "sdr/timedomain.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace press {
namespace {

TEST(Integration, NlosSwingDwarfsLosSwing) {
    // The paper's central experimental observation: passive PRESS moves
    // blocked-path channels by tens of dB but line-of-sight channels
    // barely at all.
    core::StudyParams los_params;
    los_params.link_distance_m = 1.5;
    std::vector<double> los, nlos;
    for (std::uint64_t s = 0; s < 3; ++s) {
        core::LinkScenario l = core::make_link_scenario(200 + s, true,
                                                        los_params);
        core::LinkScenario n = core::make_link_scenario(100 + s, false);
        los.push_back(core::max_true_swing_db(l));
        nlos.push_back(core::max_true_swing_db(n));
    }
    EXPECT_LT(util::median(los), 8.0);
    EXPECT_GT(util::median(nlos), 15.0);
    EXPECT_GT(util::median(nlos), util::median(los) + 10.0);
}

TEST(Integration, SweepFindsLargeSwingsAndMovedNulls) {
    // A compact Figure-4/5 style run: a full 64-config sweep must expose
    // a >= 10 dB single-subcarrier swing and at least one moved null.
    core::LinkScenario scenario = core::make_link_scenario(101, false);
    util::Rng rng(55);
    const core::ConfigSweep sweep =
        core::sweep_configurations(scenario, 4, rng);
    const core::ExtremePair pair = core::find_extreme_pair(sweep);
    EXPECT_GE(pair.max_diff_db, 10.0);
    const auto moves = core::null_movements(sweep);
    if (!moves.empty()) {
        EXPECT_GE(util::max_value(moves), 1.0);
        EXPECT_LE(util::max_value(moves), 52.0);
    }
}

TEST(Integration, OptimizationBeatsAllOffBaseline) {
    // Configure-for-throughput end to end: the controller must find a
    // configuration whose worst-subcarrier SNR beats the all-absorptive
    // environment within a quasi-static coherence budget.
    core::LinkScenario scenario = core::make_link_scenario(103, false);
    util::Rng rng(66);
    scenario.system.apply(scenario.array_id, {3, 3, 3});  // all off
    const double baseline = util::min_value(
        scenario.system.measured_snr_db(scenario.link_id, rng));

    const control::MinSnrObjective objective(0);
    const auto outcome = scenario.system.optimize(
        scenario.array_id, objective, control::GreedyCoordinateDescent(),
        control::ControlPlaneModel::fast(), 80e-3, rng);
    EXPECT_GT(outcome.search.best_score, baseline);
    EXPECT_LE(outcome.elapsed_s, 80e-3 + 1e-9);
    // Throughput follows the flatter channel.
    const double rate_after = phy::expected_throughput_mbps(
        scenario.system.measured_snr_db(scenario.link_id, rng));
    EXPECT_GT(rate_after, 0.0);
}

TEST(Integration, TimeDomainAgreesOnFullScenario) {
    // The sample-level chain and the frequency-domain shortcut must agree
    // on a complete study scenario (room + blocker + scatterers + array).
    core::LinkScenario scenario = core::make_link_scenario(104, false);
    sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);

    phy::FrameSpec spec;
    spec.num_ltf = 8;
    sdr::TimeDomainConfig cfg;
    cfg.num_taps = 96;
    cfg.apply_cfo = false;
    cfg.apply_phase_noise = false;
    util::Rng rng(77);
    const auto result = sdr::exchange_frame(medium, link, spec, rng, cfg);
    const util::CVec h_fd = medium.frequency_response(link);

    // Compare in dB where the channel is not deeply faded (noise dominates
    // inside nulls).
    double worst_db = 0.0;
    const double floor_amp = 10.0 * std::sqrt(
        medium.estimate_noise_variance(link) / spec.num_ltf);
    for (std::size_t k = 0; k < h_fd.size(); ++k) {
        if (std::abs(h_fd[k]) < floor_amp) continue;
        const double diff =
            std::abs(util::amplitude_to_db(std::abs(result.estimate.h[k])) -
                     util::amplitude_to_db(std::abs(h_fd[k])));
        worst_db = std::max(worst_db, diff);
    }
    EXPECT_LT(worst_db, 2.0);
}

TEST(Integration, WireProtocolDrivesArray) {
    // Controller-side encode -> bytes -> element-side decode -> apply; the
    // measured channel must match a locally applied configuration exactly.
    core::LinkScenario scenario = core::make_link_scenario(105, false);
    const surface::Config target = {2, 0, 1};

    const auto bytes = control::encode(
        control::Message{control::SetConfig{0, target}}, 123);
    const control::Decoded decoded = control::decode(bytes);
    ASSERT_TRUE(std::holds_alternative<control::SetConfig>(decoded.message));
    const auto& msg = std::get<control::SetConfig>(decoded.message);
    scenario.system.apply(msg.array_id, msg.config);
    EXPECT_EQ(scenario.system.medium()
                  .array(scenario.array_id)
                  .current_config(),
              target);

    // And the report path carries the measurement back faithfully.
    util::Rng rng(88);
    const auto snr = scenario.system.measured_snr_db(scenario.link_id, rng);
    control::MeasureReport report;
    report.link_id = 0;
    report.set_snr_db(snr);
    const auto report_bytes =
        control::encode(control::Message{report}, 124);
    const auto report_back = std::get<control::MeasureReport>(
        control::decode(report_bytes).message);
    const auto snr_back = report_back.snr_db();
    ASSERT_EQ(snr_back.size(), snr.size());
    for (std::size_t k = 0; k < snr.size(); ++k)
        EXPECT_NEAR(snr_back[k], snr[k], 0.006);
}

TEST(Integration, MimoConditioningImprovesWithSearch) {
    // Figure-8 flavor as a control loop: choosing the best configuration
    // by condition number must beat the worst one on fresh measurements.
    core::MimoScenario scenario = core::make_mimo_scenario(500);
    util::Rng rng(99);
    const core::MimoSweep sweep = core::sweep_mimo(scenario, 10, rng);
    surface::Array& array = scenario.medium.array(scenario.array_id);
    const auto space = array.config_space();

    array.apply(space.at(sweep.best_config));
    const auto best_est = scenario.medium.sound_mimo(
        scenario.tx_antennas, scenario.rx_antennas, scenario.profile, 20,
        rng);
    array.apply(space.at(sweep.worst_config));
    const auto worst_est = scenario.medium.sound_mimo(
        scenario.tx_antennas, scenario.rx_antennas, scenario.profile, 20,
        rng);
    EXPECT_LT(util::median(phy::condition_numbers_db(best_est)),
              util::median(phy::condition_numbers_db(worst_est)));
}

TEST(Integration, HarmonizationCurationSucceeds) {
    util::Rng rng(42);
    const auto pair = core::find_harmonization_pair(300, 40, 2.5, rng);
    ASSERT_TRUE(pair.found);
    EXPECT_GE(pair.selectivity_a_db, 2.5);
    EXPECT_LE(pair.selectivity_b_db, -2.5);
    EXPECT_EQ(pair.snr_a_db.size(), 102u);
    EXPECT_NE(pair.config_a, pair.config_b);
}

TEST(Integration, CoherenceBudgetScalesTrials) {
    // More coherence time -> more trials -> never a worse best score
    // (same searcher, same seed).
    core::LinkScenario scenario = core::make_link_scenario(106, false);
    const control::MinSnrObjective objective(0);
    double prev_best = -1e9;
    for (double budget : {10e-3, 80e-3, 500e-3}) {
        core::LinkScenario fresh = core::make_link_scenario(106, false);
        util::Rng rng(7);
        const auto outcome = fresh.system.optimize(
            fresh.array_id, objective, control::ExhaustiveSearcher(),
            control::ControlPlaneModel::fast(), budget, rng);
        EXPECT_GE(outcome.search.best_score, prev_best - 3.0);
        prev_best = std::max(prev_best, outcome.search.best_score);
    }
}

}  // namespace
}  // namespace press
