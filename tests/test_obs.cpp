// Observability subsystem: registry arithmetic, histogram bucket edges,
// span nesting and flush order, the exporter round-trip against the
// documented press.telemetry/v1 schema, manifest determinism, and
// thread-count independence of the folded batch metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/batch.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::obs {
namespace {

/// Every case runs with collection forced on and a clean slate; the
/// registry and span ring are process-global.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_enabled(true);
        MetricsRegistry::global().reset();
        (void)flush_spans();
    }
};

TEST_F(ObsTest, CounterArithmetic) {
    Counter& c = MetricsRegistry::global().counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // The registry hands back the same instance for the same name.
    EXPECT_EQ(&MetricsRegistry::global().counter("test.counter"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
    Gauge& g = MetricsRegistry::global().gauge("test.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.set(-7.0);  // set replaces, never accumulates
    EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST_F(ObsTest, HistogramBucketEdges) {
    Histogram h({1.0, 2.0, 4.0});
    h.observe(0.5);   // below first bound -> bucket 0
    h.observe(1.0);   // exactly on a bound counts in that bucket
    h.observe(1.5);   // bucket 1
    h.observe(2.0);   // edge again -> bucket 1
    h.observe(4.0);   // last bound -> bucket 2
    h.observe(4.001); // past the last bound -> overflow
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.001);
}

TEST_F(ObsTest, HistogramNonFiniteGoesToOverflow) {
    Histogram h({1.0});
    h.observe(std::numeric_limits<double>::quiet_NaN());
    h.observe(std::numeric_limits<double>::infinity());
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);  // non-finite values never touch sum
}

TEST_F(ObsTest, HistogramRejectsUnsortedBounds) {
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, SeriesTruncatesButKeepsTrueLength) {
    Series s;
    for (std::size_t i = 0; i < Series::kMaxPoints + 5; ++i)
        s.append(static_cast<double>(i));
    EXPECT_EQ(s.values().size(), Series::kMaxPoints);
    EXPECT_EQ(s.total_length(), Series::kMaxPoints + 5);
    s.reset();
    s.append(std::vector<double>{1.0, 2.0, 3.0});
    EXPECT_EQ(s.values(), (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(s.total_length(), 3u);
}

TEST_F(ObsTest, SpanNestingAndFlushOrder) {
    {
        TraceSpan outer("outer");
        {
            TraceSpan inner("inner");
        }
        {
            TraceSpan second("second");
        }
    }
    const std::vector<SpanRecord> spans = flush_spans();
    ASSERT_EQ(spans.size(), 3u);
    // Children complete before their parent; seq numbers completions.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[1].name, "second");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[2].name, "outer");
    EXPECT_EQ(spans[2].depth, 0u);
    EXPECT_LT(spans[0].seq, spans[1].seq);
    EXPECT_LT(spans[1].seq, spans[2].seq);
    // The parent's interval covers the children's.
    EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
    EXPECT_GE(spans[2].wall_ns, spans[0].wall_ns + spans[1].wall_ns);
    // The flush drained the ring.
    EXPECT_TRUE(flush_spans().empty());
}

TEST_F(ObsTest, SpanRingOverwritesOldestAndCountsDrops) {
    set_span_capacity(4);
    for (int i = 0; i < 10; ++i) {
        TraceSpan span("ring-span");
    }
    EXPECT_EQ(spans_dropped(), 6u);
    const std::vector<SpanRecord> spans = flush_spans();
    EXPECT_EQ(spans.size(), 4u);  // newest four survive
    EXPECT_EQ(spans_dropped(), 0u);  // flush resets the drop count
    set_span_capacity(4096);
}

TEST_F(ObsTest, DisabledSpansAndGatesRecordNothing) {
    set_enabled(false);
    {
        TraceSpan span("invisible");
    }
    EXPECT_TRUE(flush_spans().empty());
    set_enabled(true);
}

class FixedSimTime : public SimTimeSource {
public:
    double now = 0.0;
    double sim_now_s() const override { return now; }
};

TEST_F(ObsTest, SpanPricesSimulatedTime) {
    FixedSimTime sim;
    sim.now = 1.5;
    {
        TraceSpan span("sim-span", &sim);
        sim.now = 2.25;
    }
    const std::vector<SpanRecord> spans = flush_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_TRUE(spans[0].has_sim);
    EXPECT_DOUBLE_EQ(spans[0].sim_start_s, 1.5);
    EXPECT_DOUBLE_EQ(spans[0].sim_elapsed_s, 0.75);
}

TEST_F(ObsTest, ExporterRoundTripValidatesAgainstSchema) {
    auto& registry = MetricsRegistry::global();
    registry.counter("test.hits").add(7);
    registry.gauge("test.level_db").set(-3.25);
    registry.histogram("test.latency_us", {1.0, 10.0, 100.0}).observe(42.0);
    registry.series("test.convergence").append({1.0, 2.0, 2.5});
    {
        TraceSpan span("test.region");
    }

    const RunManifest manifest = RunManifest::capture("unit-test", 7);
    const Json doc = build_telemetry(manifest);
    EXPECT_EQ(validate_telemetry(doc), "");

    // Serialize, reparse, revalidate: the emitted bytes round-trip.
    const std::string text = doc.dump();
    const Json parsed = Json::parse(text);
    EXPECT_EQ(validate_telemetry(parsed), "");
    EXPECT_EQ(parsed.at("schema").as_string(), "press.telemetry/v1");
    EXPECT_EQ(
        parsed.at("metrics").at("counters").at("test.hits").as_double(),
        7.0);
    EXPECT_EQ(parsed.at("manifest").at("seed").as_double(), 7.0);
    const Json& hist =
        parsed.at("metrics").at("histograms").at("test.latency_us");
    EXPECT_EQ(hist.at("counts").as_array().size(), 4u);
    EXPECT_EQ(hist.at("count").as_double(), 1.0);
    const Json& series = parsed.at("series").at("test.convergence");
    EXPECT_EQ(series.at("length").as_double(), 3.0);
    ASSERT_EQ(parsed.at("spans").as_array().size(), 1u);
    EXPECT_EQ(
        parsed.at("spans").as_array()[0].at("name").as_string(),
        "test.region");

    // The table renderer accepts the same document.
    const std::string table = render_table(parsed);
    EXPECT_NE(table.find("test.hits"), std::string::npos);
    EXPECT_NE(table.find("test.region"), std::string::npos);
}

TEST_F(ObsTest, ValidatorFlagsSchemaDrift) {
    const RunManifest manifest = RunManifest::capture("unit-test", 1);
    Json doc = build_telemetry(manifest);
    doc.as_object().emplace("surprise", Json(1.0));
    EXPECT_NE(validate_telemetry(doc), "");

    Json doc2 = build_telemetry(manifest);
    doc2.as_object().erase("spans");
    EXPECT_NE(validate_telemetry(doc2), "");

    Json doc3 = build_telemetry(manifest);
    doc3.as_object()["schema"] = Json(std::string("press.telemetry/v2"));
    EXPECT_NE(validate_telemetry(doc3), "");
}

TEST_F(ObsTest, ManifestIsDeterministicUnderFixedSeed) {
    const RunManifest a = RunManifest::capture("scenario-x", 1234);
    const RunManifest b = RunManifest::capture("scenario-x", 1234);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.git_describe.empty());
    EXPECT_FALSE(a.build_type.empty());
    EXPECT_GE(a.press_threads, 1u);
    // And the serialized form is byte-identical, which is what makes two
    // exports diffable.
    EXPECT_EQ(build_telemetry(a, false).dump(),
              build_telemetry(b, false).dump());
}

/// Deterministic score with real work, so multi-thread runs interleave.
double score_config(const surface::Config& c, util::Rng& rng) {
    double s = rng.uniform(0.0, 1.0);
    for (std::size_t e = 0; e < c.size(); ++e)
        s += static_cast<double>(c[e]) * static_cast<double>(e + 1);
    return s;
}

TEST_F(ObsTest, FoldedBatchMetricsMatchAcrossThreadCounts) {
    using control::BatchEvaluator;
    std::vector<surface::Config> batch;
    for (int i = 0; i < 64; ++i)
        batch.push_back({i % 4, (i / 4) % 4, (i / 16) % 4});

    const auto run = [&](std::size_t threads) {
        auto& registry = MetricsRegistry::global();
        registry.reset();
        BatchEvaluator pool(score_config, /*seed=*/99, threads);
        (void)pool.evaluate(batch);
        (void)pool.evaluate(batch);
        pool.publish_worker_stats();

        struct Folded {
            std::uint64_t evaluations;
            std::uint64_t batches;
            std::uint64_t worker_task_sum;
        } folded{};
        folded.evaluations =
            registry.counter("control.batch.evaluations").value();
        folded.batches = registry.counter("control.batch.batches").value();
        const std::size_t n = static_cast<std::size_t>(
            registry.gauge("control.batch.threads").value());
        EXPECT_EQ(n, threads);
        for (std::size_t i = 0; i < n; ++i)
            folded.worker_task_sum += static_cast<std::uint64_t>(
                registry
                    .gauge("control.batch.worker." + std::to_string(i) +
                           ".tasks")
                    .value());
        return folded;
    };

    const auto one = run(1);
    const auto eight = run(8);
    EXPECT_EQ(one.evaluations, 128u);
    EXPECT_EQ(eight.evaluations, one.evaluations);
    EXPECT_EQ(eight.batches, one.batches);
    // Work distribution differs across thread counts; the fold does not.
    EXPECT_EQ(one.worker_task_sum, 128u);
    EXPECT_EQ(eight.worker_task_sum, 128u);
}

TEST_F(ObsTest, JsonParserHandlesEscapesAndNumbers) {
    const Json v = Json::parse(
        R"({"s": "a\"b\\cAé", "n": -1.5e3, "i": 42,)"
        R"( "t": true, "z": null, "a": [1, 2.5]})");
    EXPECT_EQ(v.at("s").as_string(), "a\"b\\cAé");
    EXPECT_DOUBLE_EQ(v.at("n").as_double(), -1500.0);
    EXPECT_DOUBLE_EQ(v.at("i").as_double(), 42.0);
    EXPECT_TRUE(v.at("t").as_bool());
    EXPECT_TRUE(v.at("z").is_null());
    EXPECT_EQ(v.at("a").as_array().size(), 2u);
    EXPECT_THROW(Json::parse("{\"unterminated\": "), std::runtime_error);
    // Deterministic writer: keys come out sorted, integers undecorated.
    Json::Object obj;
    obj.emplace("b", Json(2.0));
    obj.emplace("a", Json(1.0));
    const std::string text = Json(std::move(obj)).dump();
    EXPECT_LT(text.find("\"a\""), text.find("\"b\""));
    EXPECT_NE(text.find("\"a\": 1"), std::string::npos);
}

}  // namespace
}  // namespace press::obs
