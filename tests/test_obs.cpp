// Observability subsystem: registry arithmetic, histogram bucket edges,
// span nesting and flush order, causal identity (trace/span/parent ids,
// cross-thread adoption, thread-count-independent span trees), the
// exporter round-trip against the documented press.telemetry/v2 schema,
// the Perfetto trace rendering, the flight recorder, the bench-diff
// regression gate, manifest determinism, and thread-count independence
// of the folded batch metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "control/batch.hpp"
#include "obs/diff.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::obs {
namespace {

/// Every case runs with collection forced on and a clean slate; the
/// registry and span ring are process-global.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_enabled(true);
        MetricsRegistry::global().reset();
        (void)flush_spans();
    }
};

TEST_F(ObsTest, CounterArithmetic) {
    Counter& c = MetricsRegistry::global().counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // The registry hands back the same instance for the same name.
    EXPECT_EQ(&MetricsRegistry::global().counter("test.counter"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
    Gauge& g = MetricsRegistry::global().gauge("test.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.set(-7.0);  // set replaces, never accumulates
    EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST_F(ObsTest, HistogramBucketEdges) {
    Histogram h({1.0, 2.0, 4.0});
    h.observe(0.5);   // below first bound -> bucket 0
    h.observe(1.0);   // exactly on a bound counts in that bucket
    h.observe(1.5);   // bucket 1
    h.observe(2.0);   // edge again -> bucket 1
    h.observe(4.0);   // last bound -> bucket 2
    h.observe(4.001); // past the last bound -> overflow
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.001);
}

TEST_F(ObsTest, HistogramNonFiniteGoesToOverflow) {
    Histogram h({1.0});
    h.observe(std::numeric_limits<double>::quiet_NaN());
    h.observe(std::numeric_limits<double>::infinity());
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);  // non-finite values never touch sum
}

TEST_F(ObsTest, HistogramRejectsUnsortedBounds) {
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, SeriesTruncatesButKeepsTrueLength) {
    Series s;
    for (std::size_t i = 0; i < Series::kMaxPoints + 5; ++i)
        s.append(static_cast<double>(i));
    EXPECT_EQ(s.values().size(), Series::kMaxPoints);
    EXPECT_EQ(s.total_length(), Series::kMaxPoints + 5);
    s.reset();
    s.append(std::vector<double>{1.0, 2.0, 3.0});
    EXPECT_EQ(s.values(), (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(s.total_length(), 3u);
}

TEST_F(ObsTest, SpanNestingAndFlushOrder) {
    {
        TraceSpan outer("outer");
        {
            TraceSpan inner("inner");
        }
        {
            TraceSpan second("second");
        }
    }
    const std::vector<SpanRecord> spans = flush_spans();
    ASSERT_EQ(spans.size(), 3u);
    // Children complete before their parent; seq numbers completions.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[1].name, "second");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[2].name, "outer");
    EXPECT_EQ(spans[2].depth, 0u);
    EXPECT_LT(spans[0].seq, spans[1].seq);
    EXPECT_LT(spans[1].seq, spans[2].seq);
    // The parent's interval covers the children's.
    EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
    EXPECT_GE(spans[2].wall_ns, spans[0].wall_ns + spans[1].wall_ns);
    // The flush drained the ring.
    EXPECT_TRUE(flush_spans().empty());
}

TEST_F(ObsTest, SpanRingOverwritesOldestAndCountsDrops) {
    set_span_capacity(4);
    for (int i = 0; i < 10; ++i) {
        TraceSpan span("ring-span");
    }
    EXPECT_EQ(spans_dropped(), 6u);
    const std::vector<SpanRecord> spans = flush_spans();
    EXPECT_EQ(spans.size(), 4u);  // newest four survive
    EXPECT_EQ(spans_dropped(), 0u);  // flush resets the drop count
    set_span_capacity(4096);
}

TEST_F(ObsTest, DisabledSpansAndGatesRecordNothing) {
    set_enabled(false);
    {
        TraceSpan span("invisible");
    }
    EXPECT_TRUE(flush_spans().empty());
    set_enabled(true);
}

class FixedSimTime : public SimTimeSource {
public:
    double now = 0.0;
    double sim_now_s() const override { return now; }
};

TEST_F(ObsTest, SpanPricesSimulatedTime) {
    FixedSimTime sim;
    sim.now = 1.5;
    {
        TraceSpan span("sim-span", &sim);
        sim.now = 2.25;
    }
    const std::vector<SpanRecord> spans = flush_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_TRUE(spans[0].has_sim);
    EXPECT_DOUBLE_EQ(spans[0].sim_start_s, 1.5);
    EXPECT_DOUBLE_EQ(spans[0].sim_elapsed_s, 0.75);
}

TEST_F(ObsTest, ExporterRoundTripValidatesAgainstSchema) {
    auto& registry = MetricsRegistry::global();
    registry.counter("test.hits").add(7);
    registry.gauge("test.level_db").set(-3.25);
    registry.histogram("test.latency_us", {1.0, 10.0, 100.0}).observe(42.0);
    registry.series("test.convergence").append({1.0, 2.0, 2.5});
    {
        TraceSpan span("test.region");
    }

    const RunManifest manifest = RunManifest::capture("unit-test", 7);
    const Json doc = build_telemetry(manifest);
    EXPECT_EQ(validate_telemetry(doc), "");

    // Serialize, reparse, revalidate: the emitted bytes round-trip.
    const std::string text = doc.dump();
    const Json parsed = Json::parse(text);
    EXPECT_EQ(validate_telemetry(parsed), "");
    EXPECT_EQ(parsed.at("schema").as_string(), "press.telemetry/v2");
    EXPECT_EQ(
        parsed.at("metrics").at("counters").at("test.hits").as_double(),
        7.0);
    EXPECT_EQ(parsed.at("manifest").at("seed").as_double(), 7.0);
    const Json& hist =
        parsed.at("metrics").at("histograms").at("test.latency_us");
    EXPECT_EQ(hist.at("counts").as_array().size(), 4u);
    EXPECT_EQ(hist.at("count").as_double(), 1.0);
    const Json& series = parsed.at("series").at("test.convergence");
    EXPECT_EQ(series.at("length").as_double(), 3.0);
    ASSERT_EQ(parsed.at("spans").as_array().size(), 1u);
    const Json& span0 = parsed.at("spans").as_array()[0];
    EXPECT_EQ(span0.at("name").as_string(), "test.region");
    // v2 causal identity: a root span names its own trace.
    EXPECT_GE(span0.at("span_id").as_double(), 1.0);
    EXPECT_EQ(span0.at("trace_id").as_double(),
              span0.at("span_id").as_double());
    EXPECT_EQ(span0.at("parent_span").as_double(), 0.0);
    EXPECT_FALSE(span0.at("adopted").as_bool());

    // The table renderer accepts the same document.
    const std::string table = render_table(parsed);
    EXPECT_NE(table.find("test.hits"), std::string::npos);
    EXPECT_NE(table.find("test.region"), std::string::npos);
}

TEST_F(ObsTest, ValidatorFlagsSchemaDrift) {
    const RunManifest manifest = RunManifest::capture("unit-test", 1);
    Json doc = build_telemetry(manifest);
    doc.as_object().emplace("surprise", Json(1.0));
    EXPECT_NE(validate_telemetry(doc), "");

    Json doc2 = build_telemetry(manifest);
    doc2.as_object().erase("spans");
    EXPECT_NE(validate_telemetry(doc2), "");

    Json doc3 = build_telemetry(manifest);
    doc3.as_object()["schema"] = Json(std::string("press.telemetry/v3"));
    EXPECT_NE(validate_telemetry(doc3), "");
}

TEST_F(ObsTest, ManifestIsDeterministicUnderFixedSeed) {
    const RunManifest a = RunManifest::capture("scenario-x", 1234);
    const RunManifest b = RunManifest::capture("scenario-x", 1234);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.git_describe.empty());
    EXPECT_FALSE(a.build_type.empty());
    EXPECT_GE(a.press_threads, 1u);
    // And the serialized form is byte-identical, which is what makes two
    // exports diffable.
    EXPECT_EQ(build_telemetry(a, false).dump(),
              build_telemetry(b, false).dump());
}

TEST_F(ObsTest, ManifestRecordsKernelDispatch) {
    ::unsetenv("PRESS_KERNEL");
    EXPECT_EQ(env_kernel_dispatch(), "native");
    ::setenv("PRESS_KERNEL", "SCALAR", 1);
    EXPECT_EQ(env_kernel_dispatch(), "scalar");
    const RunManifest m = RunManifest::capture("unit-test", 1);
    EXPECT_EQ(m.kernel_dispatch, "scalar");
    const Json doc = build_telemetry(m);
    EXPECT_EQ(validate_telemetry(doc), "");
    EXPECT_EQ(doc.at("manifest").at("kernel_dispatch").as_string(),
              "scalar");
    // Anything that is not exactly "scalar" selects the native flavor.
    ::setenv("PRESS_KERNEL", "avx-please", 1);
    EXPECT_EQ(env_kernel_dispatch(), "native");
    ::unsetenv("PRESS_KERNEL");
}

/// Deterministic score with real work, so multi-thread runs interleave.
double score_config(const surface::Config& c, util::Rng& rng,
                    control::EvalScratch& /*scratch*/) {
    double s = rng.uniform(0.0, 1.0);
    for (std::size_t e = 0; e < c.size(); ++e)
        s += static_cast<double>(c[e]) * static_cast<double>(e + 1);
    return s;
}

TEST_F(ObsTest, FoldedBatchMetricsMatchAcrossThreadCounts) {
    using control::BatchEvaluator;
    std::vector<surface::Config> batch;
    for (int i = 0; i < 64; ++i)
        batch.push_back({i % 4, (i / 4) % 4, (i / 16) % 4});

    const auto run = [&](std::size_t threads) {
        auto& registry = MetricsRegistry::global();
        registry.reset();
        BatchEvaluator pool(score_config, /*seed=*/99, threads);
        (void)pool.evaluate(batch);
        (void)pool.evaluate(batch);
        pool.publish_worker_stats();

        struct Folded {
            std::uint64_t evaluations;
            std::uint64_t batches;
            std::uint64_t worker_task_sum;
        } folded{};
        folded.evaluations =
            registry.counter("control.batch.evaluations").value();
        folded.batches = registry.counter("control.batch.batches").value();
        const std::size_t n = static_cast<std::size_t>(
            registry.gauge("control.batch.threads").value());
        EXPECT_EQ(n, threads);
        for (std::size_t i = 0; i < n; ++i)
            folded.worker_task_sum += static_cast<std::uint64_t>(
                registry
                    .gauge("control.batch.worker." + std::to_string(i) +
                           ".tasks")
                    .value());
        return folded;
    };

    const auto one = run(1);
    const auto eight = run(8);
    EXPECT_EQ(one.evaluations, 128u);
    EXPECT_EQ(eight.evaluations, one.evaluations);
    EXPECT_EQ(eight.batches, one.batches);
    // Work distribution differs across thread counts; the fold does not.
    EXPECT_EQ(one.worker_task_sum, 128u);
    EXPECT_EQ(eight.worker_task_sum, 128u);
}

TEST_F(ObsTest, ClassifyTelemetryEnvIsCaseInsensitive) {
    EXPECT_EQ(classify_telemetry_env(""), TelemetryEnv::kOn);
    EXPECT_EQ(classify_telemetry_env("1"), TelemetryEnv::kOn);
    EXPECT_EQ(classify_telemetry_env("on"), TelemetryEnv::kOn);
    EXPECT_EQ(classify_telemetry_env("TRUE"), TelemetryEnv::kOn);
    EXPECT_EQ(classify_telemetry_env("Yes"), TelemetryEnv::kOn);
    EXPECT_EQ(classify_telemetry_env("0"), TelemetryEnv::kOff);
    EXPECT_EQ(classify_telemetry_env("OFF"), TelemetryEnv::kOff);
    EXPECT_EQ(classify_telemetry_env("False"), TelemetryEnv::kOff);
    EXPECT_EQ(classify_telemetry_env("no"), TelemetryEnv::kOff);
    // Anything else names the export directory (and implies "on").
    EXPECT_EQ(classify_telemetry_env("/tmp/exports"),
              TelemetryEnv::kDirectory);
    EXPECT_EQ(classify_telemetry_env("onward"), TelemetryEnv::kDirectory);
}

TEST_F(ObsTest, SpansLinkIntoOneCausalTree) {
    {
        TraceSpan root("test.root");
        TraceSpan child("test.child");
    }
    const std::vector<SpanRecord> spans = flush_spans();
    ASSERT_EQ(spans.size(), 2u);
    const SpanRecord& child = spans[0];
    const SpanRecord& root = spans[1];
    EXPECT_EQ(root.trace_id, root.span_id);
    EXPECT_EQ(root.parent_span, 0u);
    EXPECT_EQ(child.trace_id, root.trace_id);
    EXPECT_EQ(child.parent_span, root.span_id);
    EXPECT_FALSE(root.adopted);
    EXPECT_FALSE(child.adopted);  // lexical nesting, not adoption
}

TEST_F(ObsTest, ContextGuardAdoptsAcrossThreads) {
    {
        TraceSpan root("test.root");
        const TraceContext ctx = root.context();
        std::thread worker([ctx]() {
            ContextGuard adopt(ctx);
            TraceSpan span("test.remote");
        });
        worker.join();
    }
    const std::vector<SpanRecord> spans = flush_spans();
    ASSERT_EQ(spans.size(), 2u);
    const SpanRecord& remote = spans[0];
    const SpanRecord& root = spans[1];
    EXPECT_EQ(remote.trace_id, root.trace_id);
    EXPECT_EQ(remote.parent_span, root.span_id);
    EXPECT_TRUE(remote.adopted);
    EXPECT_NE(remote.thread, root.thread);
}

/// The causal tree must be a property of the work, not of the worker
/// count: (span name -> parent span name) edges are identical whether a
/// batch runs on one thread or eight, and every span shares one trace.
TEST_F(ObsTest, BatchEvaluatorSpanTreeIsThreadCountInvariant) {
    std::vector<surface::Config> batch;
    for (int i = 0; i < 64; ++i)
        batch.push_back({i % 4, (i / 4) % 4, (i / 16) % 4});

    const auto run = [&](std::size_t threads) {
        (void)flush_spans();
        {
            TraceSpan root("test.optimize");
            control::BatchEvaluator pool(score_config, /*seed=*/99,
                                         threads);
            (void)pool.evaluate(batch);
        }  // pool joined: every worker span is closed
        const std::vector<SpanRecord> spans = flush_spans();
        std::map<std::uint64_t, std::string> name_of;
        for (const SpanRecord& s : spans) name_of[s.span_id] = s.name;
        std::set<std::uint64_t> traces;
        std::set<std::pair<std::string, std::string>> edges;
        for (const SpanRecord& s : spans) {
            traces.insert(s.trace_id);
            edges.insert({s.name, s.parent_span == 0
                                      ? std::string()
                                      : name_of[s.parent_span]});
        }
        EXPECT_EQ(traces.size(), 1u) << threads << " threads";
        return edges;
    };

    const auto serial = run(1);
    const auto parallel = run(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_TRUE(serial.count({"test.optimize", ""}));
    EXPECT_TRUE(serial.count({"control.batch.evaluate", "test.optimize"}));
    EXPECT_TRUE(serial.count(
        {"control.batch.worker_batch", "control.batch.evaluate"}));
}

TEST_F(ObsTest, FlightRecorderKeepsFreshestWindowAndCounterDeltas) {
    auto& registry = MetricsRegistry::global();
    registry.counter("test.flight.counter").add(5);
    flight_arm(8);
    registry.counter("test.flight.counter").add(3);
    for (int i = 0; i < 20; ++i) {
        TraceSpan span("test.flight.span");
    }
    const Json dump = flight_dump();
    flight_disarm();

    EXPECT_EQ(validate_flight(dump), "");
    EXPECT_EQ(dump.at("schema").as_string(), "press.flight/v1");
    EXPECT_EQ(dump.at("spans_recorded").as_double(), 20.0);
    // Only the freshest N survive the ring.
    EXPECT_LE(dump.at("spans").as_array().size(), 8u);
    EXPECT_GE(dump.at("spans").as_array().size(), 1u);
    for (const Json& s : dump.at("spans").as_array())
        EXPECT_EQ(s.at("name").as_string(), "test.flight.span");
    // Counter deltas are relative to the arming point, values absolute.
    const Json& counter = dump.at("counters").at("test.flight.counter");
    EXPECT_EQ(counter.at("value").as_double(), 8.0);
    EXPECT_EQ(counter.at("delta").as_double(), 3.0);
}

TEST_F(ObsTest, PerfettoExportRoundTrip) {
    {
        TraceSpan root("alpha.root");
        const TraceContext ctx = root.context();
        {
            TraceSpan child("alpha.child");
        }
        std::thread worker([ctx]() {
            ContextGuard adopt(ctx);
            TraceSpan span("beta.remote");
        });
        worker.join();
    }
    const RunManifest manifest = RunManifest::capture("unit-test", 3);
    const Json telemetry = build_telemetry(manifest);
    const Json trace = perfetto_export(telemetry);
    EXPECT_EQ(validate_trace(trace), "");

    std::size_t complete = 0, flow_starts = 0, flow_finishes = 0;
    std::set<double> pids;
    for (const Json& e : trace.at("traceEvents").as_array()) {
        const std::string& ph = e.at("ph").as_string();
        if (ph == "X") {
            ++complete;
            pids.insert(e.at("pid").as_double());
        }
        if (ph == "s") ++flow_starts;
        if (ph == "f") ++flow_finishes;
    }
    EXPECT_EQ(complete, 3u);
    // Two layers ("alpha", "beta") render as two processes.
    EXPECT_EQ(pids.size(), 2u);
    // Exactly the adopted cross-thread hop draws a flow arrow.
    EXPECT_EQ(flow_starts, 1u);
    EXPECT_EQ(flow_finishes, 1u);
}

TEST_F(ObsTest, BenchDiffGatesCountersAndForgivesGauges) {
    auto& registry = MetricsRegistry::global();
    registry.counter("test.diff.trials").add(100);
    registry.gauge("test.diff.elapsed_s").set(1.5);
    const RunManifest manifest = RunManifest::capture("unit-test", 11);
    const Json telemetry = build_telemetry(manifest);
    const Json baseline = make_baseline(telemetry);
    EXPECT_EQ(baseline.at("schema").as_string(), "press.bench_baseline/v1");

    // A run diffed against its own baseline passes.
    const DiffResult same = diff_telemetry(baseline, telemetry);
    EXPECT_TRUE(same.comparable);
    EXPECT_TRUE(same.ok()) << (same.failures.empty()
                                   ? ""
                                   : same.failures.front());

    // A doctored deterministic counter fails the gate.
    Json doctored = baseline;
    doctored["counters"]["test.diff.trials"] = Json(150.0);
    const DiffResult bad = diff_telemetry(doctored, telemetry);
    EXPECT_TRUE(bad.comparable);
    EXPECT_FALSE(bad.ok());

    // A wall-clock gauge shift only warns.
    Json shifted = baseline;
    shifted["gauges"]["test.diff.elapsed_s"] = Json(15.0);
    const DiffResult warned = diff_telemetry(shifted, telemetry);
    EXPECT_TRUE(warned.ok());
    EXPECT_FALSE(warned.warnings.empty());

    // A strict-identity mismatch makes the runs incomparable outright.
    Json alien = baseline;
    alien["manifest"]["press_threads"] = Json(999.0);
    const DiffResult incomparable = diff_telemetry(alien, telemetry);
    EXPECT_FALSE(incomparable.comparable);
    EXPECT_FALSE(incomparable.ok());
}

TEST_F(ObsTest, BenchDiffComparesScenarioAsSceneTokenSet) {
    auto& registry = MetricsRegistry::global();
    registry.counter("test.scenes.trials").add(10);
    const RunManifest manifest = RunManifest::capture("bench,fig4,fig6", 11);
    const Json telemetry = build_telemetry(manifest);
    const Json baseline = make_baseline(telemetry);

    // A current run that *added* a scene stays comparable; the addition
    // is surfaced as a warning so the baseline gets re-snapshotted.
    const RunManifest grown_manifest =
        RunManifest::capture("bench,fig4,fig6,massive", 11);
    const Json grown = build_telemetry(grown_manifest);
    const DiffResult added = diff_telemetry(baseline, grown);
    EXPECT_TRUE(added.comparable);
    EXPECT_TRUE(added.ok());
    ASSERT_FALSE(added.warnings.empty());
    EXPECT_NE(added.warnings.front().find("massive"), std::string::npos);

    // Dropping a baseline scene silently removes its counters from the
    // run, so the comparison is meaningless: incomparable, hard fail.
    const RunManifest shrunk_manifest = RunManifest::capture("bench,fig4", 11);
    const Json shrunk = build_telemetry(shrunk_manifest);
    const DiffResult dropped = diff_telemetry(baseline, shrunk);
    EXPECT_FALSE(dropped.comparable);
    EXPECT_FALSE(dropped.ok());
    ASSERT_FALSE(dropped.failures.empty());
    EXPECT_NE(dropped.failures.front().find("fig6"), std::string::npos);

    // Single-token scenarios keep the old exact-match behavior: a
    // rename is a removal plus an addition, so it still fails.
    const Json solo_base =
        make_baseline(build_telemetry(RunManifest::capture("alpha", 11)));
    const Json solo_cur = build_telemetry(RunManifest::capture("beta", 11));
    EXPECT_FALSE(diff_telemetry(solo_base, solo_cur).comparable);
}

TEST_F(ObsTest, DiffToleranceEnvOverride) {
    ::setenv("PRESS_BENCH_DIFF_TOLERANCE_PCT", "7.5", 1);
    EXPECT_DOUBLE_EQ(diff_tolerance_from_env(), 7.5);
    ::setenv("PRESS_BENCH_DIFF_TOLERANCE_PCT", "garbage", 1);
    EXPECT_DOUBLE_EQ(diff_tolerance_from_env(), kDefaultDiffTolerancePct);
    ::unsetenv("PRESS_BENCH_DIFF_TOLERANCE_PCT");
    EXPECT_DOUBLE_EQ(diff_tolerance_from_env(), kDefaultDiffTolerancePct);
}

// ---- timeseries store and SLO tracker ----------------------------------

TEST_F(ObsTest, TimeseriesBaselinesAtDiscoveryAndTracksDeltas) {
    Counter& c = MetricsRegistry::global().counter("ts.counter");
    c.add(5);  // pre-tracking history must not leak into the first window
    Timeseries ts;
    ts.refresh();
    c.add(3);
    ts.sample(1.0);
    c.add(2);
    ts.sample(2.0);
    const auto deltas = ts.counter_deltas("ts.counter");
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(deltas[0], 3.0);
    EXPECT_DOUBLE_EQ(deltas[1], 2.0);
    EXPECT_EQ(ts.revision(), 2u);
    EXPECT_DOUBLE_EQ(ts.last_sample_s(), 2.0);
}

TEST_F(ObsTest, TimeseriesCounterResetIsGuardedNotUnderflowed) {
    Counter& c = MetricsRegistry::global().counter("ts.reset");
    Timeseries ts;
    ts.refresh();
    c.add(7);
    ts.sample(1.0);
    c.reset();
    c.add(4);  // value (4) moved backwards past last (7)
    ts.sample(2.0);
    const auto deltas = ts.counter_deltas("ts.reset");
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(deltas[0], 7.0);
    EXPECT_DOUBLE_EQ(deltas[1], 4.0);  // the whole new value, no wrap
}

TEST_F(ObsTest, TimeseriesRingKeepsNewestWindows) {
    TimeseriesOptions options;
    options.ring_capacity = 3;
    Counter& c = MetricsRegistry::global().counter("ts.ring");
    Timeseries ts(options);
    ts.refresh();
    for (int i = 1; i <= 5; ++i) {
        c.add(static_cast<std::uint64_t>(i));
        ts.sample(static_cast<double>(i));
    }
    const auto deltas = ts.counter_deltas("ts.ring");
    ASSERT_EQ(deltas.size(), 3u);  // oldest two windows rolled off
    EXPECT_DOUBLE_EQ(deltas[0], 3.0);
    EXPECT_DOUBLE_EQ(deltas[1], 4.0);
    EXPECT_DOUBLE_EQ(deltas[2], 5.0);
}

TEST_F(ObsTest, TimeseriesHistogramDigestIsPerWindow) {
    Histogram& h = MetricsRegistry::global().histogram(
        "ts.hist", {100.0, 1000.0, 10000.0});
    Timeseries ts;
    ts.refresh();
    h.observe(50.0);
    h.observe(500.0);
    h.observe(500.0);
    ts.sample(1.0);
    h.observe(5000.0);
    ts.sample(2.0);
    const auto windows = ts.histogram_windows("ts.hist");
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0].count, 3u);
    EXPECT_DOUBLE_EQ(windows[0].sum, 1050.0);
    EXPECT_DOUBLE_EQ(windows[0].p50, 1000.0);  // bucket upper bound
    // The second window digests only its own observation, not history.
    EXPECT_EQ(windows[1].count, 1u);
    EXPECT_DOUBLE_EQ(windows[1].sum, 5000.0);
    EXPECT_DOUBLE_EQ(windows[1].p50, 10000.0);
}

TEST_F(ObsTest, TimeseriesRefreshIfGrownPicksUpNewMetrics) {
    MetricsRegistry::global().counter("ts.grow.first");
    Timeseries ts;
    ts.refresh();
    Counter& late = MetricsRegistry::global().counter("ts.grow.second");
    ts.refresh_if_grown();  // baselines the newcomer at discovery
    late.add(9);
    ts.sample(1.0);
    const auto deltas = ts.counter_deltas("ts.grow.second");
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_DOUBLE_EQ(deltas[0], 9.0);
}

TEST_F(ObsTest, ExemplarsKeepWindowMaxAndThresholdCrossersOnce) {
    TimeseriesOptions options;
    options.exemplar_capacity = 4;
    options.exemplar_threshold_us = 1000.0;
    Timeseries ts(options);
    ts.refresh();
    ts.note_exemplar(500.0, 0xA, 0.1);   // below threshold, still the max
    ts.note_exemplar(2000.0, 0xB, 0.2);  // new max; 500 wasn't a crosser
    ts.note_exemplar(1500.0, 0xC, 0.3);  // threshold slot
    ts.note_exemplar(3000.0, 0xD, 0.4);  // new max; 2000 moves to a slot
    ts.note_exemplar(600.0, 0xE, 0.5);   // neither max nor crosser: gone
    ts.sample(1.0);
    const auto exemplars = ts.window_exemplars();
    ASSERT_EQ(exemplars.size(), 3u);
    // Slowest first, each observation listed exactly once.
    EXPECT_DOUBLE_EQ(exemplars[0].value_us, 3000.0);
    EXPECT_EQ(exemplars[0].trace_id, 0xDu);
    EXPECT_DOUBLE_EQ(exemplars[1].value_us, 2000.0);
    EXPECT_EQ(exemplars[1].trace_id, 0xBu);
    EXPECT_DOUBLE_EQ(exemplars[2].value_us, 1500.0);
    EXPECT_EQ(exemplars[2].trace_id, 0xCu);
    // The rotation emptied the accumulator: a quiet window has none.
    ts.sample(2.0);
    EXPECT_TRUE(ts.window_exemplars().empty());
}

TEST_F(ObsTest, LatestFrameFiltersByPrefixAndValidates) {
    MetricsRegistry::global().counter("service.ts.requests").add(3);
    MetricsRegistry::global().counter("other.ts.noise").add(1);
    TimeseriesOptions options;
    options.exemplar_threshold_us = 100.0;
    Timeseries ts(options);
    ts.refresh();
    ts.note_exemplar(250.0, 0x1234ABCD, 0.5);
    ts.sample(1.0);

    const Json all = ts.latest_frame();
    EXPECT_TRUE(validate_timeseries(all).empty());
    EXPECT_TRUE(all.at("counters").contains("service.ts.requests"));
    EXPECT_TRUE(all.at("counters").contains("other.ts.noise"));
    ASSERT_EQ(all.at("exemplars").as_array().size(), 1u);
    const Json& e = all.at("exemplars").as_array()[0];
    EXPECT_EQ(e.at("metric").as_string(), "service.request_us");
    // Trace ids ride as hex strings: a u64 does not survive a double.
    EXPECT_EQ(e.at("trace_id").as_string(), "0x1234abcd");

    const Json scoped = ts.latest_frame("service.", false);
    EXPECT_TRUE(validate_timeseries(scoped).empty());
    EXPECT_TRUE(scoped.at("counters").contains("service.ts.requests"));
    EXPECT_FALSE(scoped.at("counters").contains("other.ts.noise"));
    EXPECT_TRUE(scoped.at("exemplars").as_array().empty());
}

TEST_F(ObsTest, ValidateTimeseriesAcceptsStreamsAndFlagsDrift) {
    Timeseries ts;
    ts.refresh();
    ts.sample(1.0);
    Json frame = ts.latest_frame();

    Json::Object stream_obj;
    stream_obj.emplace("schema", Json(std::string("press.timeseries/v1")));
    Json::Array frames;
    frames.push_back(frame);
    frames.push_back(frame);
    stream_obj.emplace("frames", Json(std::move(frames)));
    EXPECT_TRUE(validate_timeseries(Json(std::move(stream_obj))).empty());

    // Optional service-injected keys are typed.
    frame["queue_depth"] = 4.0;
    Json session = Json::object();
    session["outbox"] = 2.0;
    session["subscribed"] = true;
    Json sessions = Json::object();
    sessions["7"] = std::move(session);
    frame["sessions"] = std::move(sessions);
    EXPECT_TRUE(validate_timeseries(frame).empty());
    frame["queue_depth"] = -1.0;
    EXPECT_NE(validate_timeseries(frame), "");
    frame["queue_depth"] = 4.0;
    frame["sessions"].as_object().at("7").as_object().erase("outbox");
    EXPECT_NE(validate_timeseries(frame), "");

    // Schema drift is named, not silently accepted.
    Json bad = ts.latest_frame();
    bad["counters"]["service.x"] = -3.0;
    EXPECT_NE(validate_timeseries(bad), "");
    Json wrong_schema = ts.latest_frame();
    wrong_schema["schema"] = "press.telemetry/v2";
    EXPECT_NE(validate_timeseries(wrong_schema), "");
    Json bad_exemplar = ts.latest_frame();
    Json e = Json::object();
    e["metric"] = "service.request_us";
    e["value_us"] = 10.0;
    e["trace_id"] = 123.0;  // not a hex string
    e["t_s"] = 1.0;
    bad_exemplar["exemplars"].as_array().push_back(std::move(e));
    EXPECT_NE(validate_timeseries(bad_exemplar), "");
}

TEST_F(ObsTest, SloTrackerBurnAndComplianceOverRollingWindow) {
    SloOptions options;
    options.window_s = 4.0;
    options.buckets = 4;
    options.miss_budget = 0.1;
    options.latency_target_us = 1000.0;
    SloTracker slo(options);

    // Empty window: no burn, full compliance (not a division by zero).
    EXPECT_DOUBLE_EQ(slo.burn_rate(0.0), 0.0);
    EXPECT_DOUBLE_EQ(slo.compliance(0.0), 1.0);

    for (int i = 0; i < 8; ++i) slo.record_ok(1.0, 100.0);
    slo.record_ok(1.0, 5000.0);  // met the deadline, blew the target
    slo.record_miss(1.0);
    EXPECT_EQ(slo.window_total(1.0), 10u);
    EXPECT_EQ(slo.window_misses(1.0), 1u);
    // 10% misses against a 10% budget: burning at exactly 1x.
    EXPECT_NEAR(slo.burn_rate(1.0), 1.0, 1e-9);
    // One miss and one slow request out of ten.
    EXPECT_NEAR(slo.compliance(1.0), 0.8, 1e-9);

    // Once the window slides past the activity, the incident ages out.
    EXPECT_EQ(slo.window_total(10.0), 0u);
    EXPECT_DOUBLE_EQ(slo.burn_rate(10.0), 0.0);
    EXPECT_DOUBLE_EQ(slo.compliance(10.0), 1.0);
}

TEST_F(ObsTest, JsonParserHandlesEscapesAndNumbers) {
    const Json v = Json::parse(
        R"({"s": "a\"b\\cAé", "n": -1.5e3, "i": 42,)"
        R"( "t": true, "z": null, "a": [1, 2.5]})");
    EXPECT_EQ(v.at("s").as_string(), "a\"b\\cAé");
    EXPECT_DOUBLE_EQ(v.at("n").as_double(), -1500.0);
    EXPECT_DOUBLE_EQ(v.at("i").as_double(), 42.0);
    EXPECT_TRUE(v.at("t").as_bool());
    EXPECT_TRUE(v.at("z").is_null());
    EXPECT_EQ(v.at("a").as_array().size(), 2u);
    EXPECT_THROW(Json::parse("{\"unterminated\": "), std::runtime_error);
    // Deterministic writer: keys come out sorted, integers undecorated.
    Json::Object obj;
    obj.emplace("b", Json(2.0));
    obj.emplace("a", Json(1.0));
    const std::string text = Json(std::move(obj)).dump();
    EXPECT_LT(text.find("\"a\""), text.find("\"b\""));
    EXPECT_NE(text.find("\"a\": 1"), std::string::npos);
}

}  // namespace
}  // namespace press::obs
