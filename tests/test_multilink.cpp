// Multi-user, multi-objective control over the shared basis: the
// MultiLinkCache's stacked wide rows must be bit-faithful to N
// independent LinkCaches, the composite objective combinators must be
// exact algebra, and optimize_multilink must keep the PR 5 determinism
// contract — bit-identical results across thread counts and kernel
// flavors — while routing composite presets through the service engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "control/batch.hpp"
#include "control/message.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/link_cache.hpp"
#include "core/multilink_cache.hpp"
#include "core/scenarios.hpp"
#include "core/serve.hpp"
#include "core/system.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace press::core {
namespace {

using control::BatchEvaluator;
using control::ControlPlaneModel;
using control::FusedSpec;
using control::GreedyCoordinateDescent;
using control::LinkTerm;
using control::MajorityVoteSearcher;
using control::MultiLinkObjective;
using control::MultiLinkProblem;
using control::MultiLinkSpec;
using control::Observation;
using control::SearchResult;

/// A small N-link scene the bit-identity tests can afford to re-trace:
/// 2 APs x 2 clients over a 6-element 4-phase panel.
MultiLinkParams small_params() {
    MultiLinkParams p;
    p.num_aps = 2;
    p.clients_per_ap = 2;
    p.num_elements = 6;
    p.num_states = 4;
    return p;
}

surface::Config random_config(const surface::ConfigSpace& space,
                              util::Rng& rng) {
    const std::vector<int>& radices = space.radices();
    surface::Config c(space.num_elements());
    for (std::size_t e = 0; e < c.size(); ++e)
        c[e] = static_cast<int>(rng.uniform_int(0, radices[e] - 1));
    return c;
}

TEST(MultiLinkScene, ShapeAndGrouping) {
    MultiLinkScenario scenario = make_multi_link_scenario(7);
    ASSERT_EQ(scenario.num_aps, 4u);
    ASSERT_EQ(scenario.clients_per_ap, 8u);
    ASSERT_EQ(scenario.num_links, 32u);
    ASSERT_EQ(scenario.system.num_links(), 32u);

    scenario.system.warm_multilink();
    const MultiLinkCache& cache = scenario.system.multilink_cache();
    ASSERT_TRUE(cache.warmed());
    // One group per AP: links are AP-major, so group a holds links
    // a*8 .. a*8+7 in slot order 0..7.
    ASSERT_EQ(cache.num_groups(), scenario.num_aps);
    ASSERT_EQ(cache.num_links(), scenario.num_links);
    EXPECT_GE(cache.num_sc(), 1u);
    EXPECT_EQ(cache.link_stride() % util::kernels::kLanes, 0u);
    EXPECT_GE(cache.link_stride(), cache.num_sc());
    for (std::size_t a = 0; a < scenario.num_aps; ++a) {
        const std::vector<std::size_t>& members = cache.group_links(a);
        ASSERT_EQ(members.size(), scenario.clients_per_ap);
        EXPECT_EQ(cache.group_width(a),
                  scenario.clients_per_ap * cache.link_stride());
        for (std::size_t c = 0; c < members.size(); ++c) {
            const std::size_t id = a * scenario.clients_per_ap + c;
            EXPECT_EQ(members[c], id);
            const MultiLinkCache::LinkView view = cache.view(id);
            EXPECT_EQ(view.group, a);
            EXPECT_EQ(view.slot, c);
            EXPECT_EQ(view.offset, c * cache.link_stride());
        }
    }
    EXPECT_GE(scenario.system.multilink_cache_stats().rebuilds, 1u);

    // The honest memory story: table bytes match the naive side (every
    // row exists once either way); the sharing wins on metadata.
    const MultiLinkCache::MemoryStats mem = cache.memory_stats();
    EXPECT_EQ(mem.shared_table_bytes, mem.naive_table_bytes);
    EXPECT_LT(mem.shared_metadata_bytes, mem.naive_metadata_bytes);
    EXPECT_GT(mem.shared_table_bytes, 0u);
}

// The tentpole bit-identity contract: each link's segment of the wide
// group response is bitwise what its own LinkCache would have produced.
TEST(MultiLinkCacheTest, SharedBasisMatchesPerLinkCaches) {
    MultiLinkScenario scenario = make_multi_link_scenario(11, small_params());
    System& system = scenario.system;
    const sdr::Medium& medium = system.medium();
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();

    system.warm_multilink();
    const MultiLinkCache& shared = system.multilink_cache();
    LinkCache naive;
    for (std::size_t id = 0; id < system.num_links(); ++id)
        naive.warm(medium, id, system.link(id));

    util::kernels::SplitVec wide, narrow;
    util::Rng rng(23);
    for (int trial = 0; trial < 4; ++trial) {
        const surface::Config config = random_config(space, rng);
        for (std::size_t g = 0; g < shared.num_groups(); ++g) {
            shared.group_response_into(medium, g, scenario.array_id,
                                       config, wide);
            ASSERT_EQ(wide.size(), shared.group_width(g));
            for (const std::size_t id : shared.group_links(g)) {
                const MultiLinkCache::LinkView view = shared.view(id);
                naive.response_into(medium, id, system.link(id),
                                    scenario.array_id, config, narrow);
                ASSERT_EQ(narrow.size(), shared.num_sc());
                for (std::size_t k = 0; k < narrow.size(); ++k) {
                    EXPECT_EQ(wide.re[view.offset + k], narrow.re[k])
                        << "link " << id << " sc " << k;
                    EXPECT_EQ(wide.im[view.offset + k], narrow.im[k])
                        << "link " << id << " sc " << k;
                }
                // Segment padding past num_sc stays zero.
                for (std::size_t k = narrow.size();
                     k < shared.link_stride(); ++k) {
                    EXPECT_EQ(wide.re[view.offset + k], 0.0);
                    EXPECT_EQ(wide.im[view.offset + k], 0.0);
                }
            }
        }
    }
}

// The coordinate-sweep delta arithmetic: copying a cached wide base and
// adding one wide element row is bitwise the same as recomputing the
// base and adding the row, and each link's segment matches LinkCache's
// own base+row path bit for bit.
TEST(MultiLinkCacheTest, DeltaPathMatchesPerLinkDelta) {
    MultiLinkScenario scenario = make_multi_link_scenario(13, small_params());
    System& system = scenario.system;
    const sdr::Medium& medium = system.medium();
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();

    system.warm_multilink();
    const MultiLinkCache& shared = system.multilink_cache();
    LinkCache naive;
    for (std::size_t id = 0; id < system.num_links(); ++id)
        naive.warm(medium, id, system.link(id));

    util::Rng rng(29);
    const surface::Config base = random_config(space, rng);
    util::kernels::SplitVec cached_base, fresh, candidate, narrow;
    const util::kernels::Dispatch d = util::kernels::active();
    for (std::size_t g = 0; g < shared.num_groups(); ++g) {
        for (std::size_t e = 0; e < base.size(); ++e) {
            shared.group_response_base_into(medium, g, scenario.array_id,
                                            base, e, cached_base);
            for (int s = 0; s < space.radices()[e]; ++s) {
                // Delta path: copy the cached base, add the wide row.
                candidate.resize(cached_base.size());
                util::kernels::copy(d, cached_base.re.data(),
                                    cached_base.im.data(),
                                    candidate.re.data(),
                                    candidate.im.data(),
                                    cached_base.size());
                shared.accumulate_group_element_row(g, scenario.array_id,
                                                    e, s, candidate);
                // Recompute path: fresh base, same row.
                shared.group_response_base_into(medium, g,
                                                scenario.array_id, base,
                                                e, fresh);
                shared.accumulate_group_element_row(g, scenario.array_id,
                                                    e, s, fresh);
                ASSERT_EQ(candidate.size(), fresh.size());
                for (std::size_t k = 0; k < candidate.size(); ++k) {
                    EXPECT_EQ(candidate.re[k], fresh.re[k]);
                    EXPECT_EQ(candidate.im[k], fresh.im[k]);
                }
                // Per-link segments match LinkCache's base+row bits.
                for (const std::size_t id : shared.group_links(g)) {
                    const MultiLinkCache::LinkView view = shared.view(id);
                    naive.response_base_into(medium, id, system.link(id),
                                             scenario.array_id, base, e,
                                             narrow);
                    naive.accumulate_element_row(id, scenario.array_id, e,
                                                 s, narrow);
                    for (std::size_t k = 0; k < narrow.size(); ++k) {
                        EXPECT_EQ(candidate.re[view.offset + k],
                                  narrow.re[k])
                            << "link " << id << " element " << e
                            << " state " << s;
                        EXPECT_EQ(candidate.im[view.offset + k],
                                  narrow.im[k])
                            << "link " << id << " element " << e
                            << " state " << s;
                    }
                }
            }
        }
    }
}

// QoS hinge algebra: u = weight*v - qos_weight*max(0, floor - v).
TEST(MultiLinkObjectiveTest, TermUtilityHingeExact) {
    LinkTerm plain;
    plain.weight = 2.0;
    EXPECT_EQ(MultiLinkObjective::term_utility(plain, 7.5), 15.0);
    EXPECT_EQ(MultiLinkObjective::term_utility(plain, -3.0), -6.0);

    LinkTerm qos;
    qos.weight = 1.0;
    qos.qos_floor_db = 10.0;
    qos.qos_weight = 4.0;
    // Above the floor: no penalty, exactly weight * v.
    EXPECT_EQ(MultiLinkObjective::term_utility(qos, 12.0), 12.0);
    EXPECT_EQ(MultiLinkObjective::term_utility(qos, 10.0), 10.0);
    // Below: weight*v - qos_weight*(floor - v).
    EXPECT_EQ(MultiLinkObjective::term_utility(qos, 8.0),
              8.0 - 4.0 * 2.0);
    EXPECT_EQ(MultiLinkObjective::term_utility(qos, -2.0),
              -2.0 - 4.0 * 12.0);

    // Negative weight = nulling: utility improves as the victim drops.
    LinkTerm null;
    null.weight = -1.5;
    EXPECT_EQ(MultiLinkObjective::term_utility(null, 20.0), -30.0);
    EXPECT_GT(MultiLinkObjective::term_utility(null, 5.0),
              MultiLinkObjective::term_utility(null, 6.0));
}

// Max-min monotonicity: the combined score is the worst term utility,
// and raising any single utility never lowers the combined score.
TEST(MultiLinkObjectiveTest, MaxMinCombineMonotone) {
    MultiLinkSpec spec;
    spec.terms.resize(5);
    spec.combine = MultiLinkSpec::Combine::kMaxMin;
    util::Rng rng(41);
    for (int trial = 0; trial < 32; ++trial) {
        std::vector<double> u(5);
        for (double& v : u) v = rng.uniform(-30.0, 40.0);
        const double combined = MultiLinkObjective::combine(spec, u.data());
        EXPECT_EQ(combined, *std::min_element(u.begin(), u.end()));
        for (std::size_t i = 0; i < u.size(); ++i) {
            std::vector<double> raised = u;
            raised[i] += rng.uniform(0.0, 10.0);
            EXPECT_GE(MultiLinkObjective::combine(spec, raised.data()),
                      combined);
        }
    }
}

// Weighted-sum score through the general Observation path must equal the
// manually combined per-term utilities.
TEST(MultiLinkObjectiveTest, WeightedSumScoreMatchesManual) {
    Observation obs;
    obs.link_snr_db = {{12.0, 8.0, 15.0}, {3.0, 5.0, 4.0}, {22.0, 19.0}};

    MultiLinkSpec spec;
    LinkTerm a;  // mean of link 0, weight 2
    a.link = 0;
    a.weight = 2.0;
    LinkTerm b;  // min of link 1 with a 10 dB floor
    b.link = 1;
    b.reduce = FusedSpec::Kind::kMinSnr;
    b.qos_floor_db = 10.0;
    b.qos_weight = 4.0;
    LinkTerm c;  // null link 2
    c.link = 2;
    c.weight = -1.0;
    spec.terms = {a, b, c};

    const MultiLinkObjective objective(spec);
    const double mean0 = util::mean(obs.link_snr_db[0]);
    const double min1 = util::min_value(obs.link_snr_db[1]);
    const double mean2 = util::mean(obs.link_snr_db[2]);
    const double expected = 2.0 * mean0 +
                            (min1 - 4.0 * (10.0 - min1)) + (-1.0 * mean2);
    EXPECT_DOUBLE_EQ(objective.score(obs), expected);
    EXPECT_NE(objective.multilink_spec(), nullptr);

    // Max-min over the same terms: worst utility wins.
    MultiLinkSpec mm = spec;
    mm.combine = MultiLinkSpec::Combine::kMaxMin;
    const double worst = std::min({2.0 * mean0,
                                   min1 - 4.0 * (10.0 - min1),
                                   -1.0 * mean2});
    EXPECT_DOUBLE_EQ(MultiLinkObjective(mm).score(obs), worst);
}

TEST(MultiLinkObjectiveTest, ProblemBuilderComposesSpec) {
    const auto objective = MultiLinkProblem()
                               .serve(0, 2.0)
                               .qos_floor(1, 10.0, 4.0)
                               .null(2, 1.5)
                               .max_min()
                               .build("scene");
    const MultiLinkSpec* spec = objective->multilink_spec();
    ASSERT_NE(spec, nullptr);
    ASSERT_EQ(spec->terms.size(), 3u);
    EXPECT_EQ(spec->combine, MultiLinkSpec::Combine::kMaxMin);
    EXPECT_EQ(spec->terms[0].link, 0u);
    EXPECT_EQ(spec->terms[0].weight, 2.0);
    EXPECT_EQ(spec->terms[1].qos_floor_db, 10.0);
    EXPECT_EQ(spec->terms[1].qos_weight, 4.0);
    EXPECT_EQ(spec->terms[2].weight, -1.5);
    EXPECT_EQ(objective->name(), "scene");

    const auto maxmin = control::make_max_min_objective(4);
    ASSERT_NE(maxmin->multilink_spec(), nullptr);
    EXPECT_EQ(maxmin->multilink_spec()->terms.size(), 4u);
    EXPECT_EQ(maxmin->multilink_spec()->combine,
              MultiLinkSpec::Combine::kMaxMin);
    const auto null = control::make_nulling_objective(3, 1, 2.0);
    ASSERT_EQ(null->multilink_spec()->terms.size(), 3u);
    EXPECT_EQ(null->multilink_spec()->terms[1].weight, -2.0);
}

// Weighted sharding: a task that reads `w` group tiles per evaluation
// shrinks the shard so one shard stays a bounded unit of work; the
// floor of one task per shard is preserved (a task never splits).
TEST(MultiLinkBatch, WeightedShardSizePolicy) {
    // weight 1 defers to the unweighted policy.
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 8, 1),
              BatchEvaluator::shard_size_for(4096, 8));
    // Cap = max(1, 64 / weight), never above the unweighted size.
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 8, 2), 32u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 8, 32), 2u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 8, 64), 1u);
    EXPECT_EQ(BatchEvaluator::shard_size_for(4096, 8, 1000), 1u);
    // Small batches keep the unweighted (already small) shard.
    EXPECT_EQ(BatchEvaluator::shard_size_for(4, 8, 32), 1u);
}

// The headline determinism contract, extended to composite objectives:
// optimize_multilink lands on the same configuration, bit for bit, for
// any evaluator thread count and either kernel flavor — for both the
// batched vote searcher and the delta-sweeping greedy searcher.
TEST(MultiLinkSearch, BitIdenticalAcrossThreadsAndKernels) {
    const MultiLinkParams params = small_params();
    const ControlPlaneModel plane = ControlPlaneModel::fast();
    control::SetConfig probe;
    probe.config.assign(static_cast<std::size_t>(params.num_elements), 0);

    const auto run = [&](std::size_t threads,
                         util::kernels::Dispatch dispatch,
                         const control::Searcher& searcher,
                         const control::Objective& objective) {
        const util::kernels::Dispatch before = util::kernels::active();
        util::kernels::set_dispatch(dispatch);
        MultiLinkScenario scenario = make_multi_link_scenario(19, params);
        const double trial_s = plane.config_trial_time_s(
            probe, scenario.num_links,
            scenario.system.medium().ofdm().num_used());
        util::Rng rng(17);
        const auto outcome = scenario.system.optimize_multilink(
            scenario.array_id, objective, searcher, plane,
            120.0 * trial_s, rng, threads);
        util::kernels::set_dispatch(before);
        EXPECT_TRUE(outcome.final_apply_ok);
        return outcome.search;
    };

    const auto maxmin = control::make_max_min_objective(4);
    const auto nulling = control::make_nulling_objective(4, 3);
    const GreedyCoordinateDescent greedy;
    const MajorityVoteSearcher vote;
    const struct {
        const control::Searcher& searcher;
        const control::Objective& objective;
    } cases[] = {{greedy, *maxmin},
                 {vote, *maxmin},
                 {greedy, *nulling}};
    for (const auto& c : cases) {
        const SearchResult base =
            run(1, util::kernels::Dispatch::kScalar, c.searcher,
                c.objective);
        const SearchResult threaded =
            run(8, util::kernels::Dispatch::kScalar, c.searcher,
                c.objective);
        const SearchResult native =
            run(1, util::kernels::Dispatch::kNative, c.searcher,
                c.objective);
        EXPECT_EQ(base.best_config, threaded.best_config);
        EXPECT_EQ(base.best_score, threaded.best_score);
        EXPECT_EQ(base.evaluations, threaded.evaluations);
        EXPECT_EQ(base.best_config, native.best_config);
        EXPECT_EQ(base.best_score, native.best_score);
        EXPECT_GT(base.evaluations, 0u);
        EXPECT_GT(base.best_score, control::kFailedTrialScore);
    }
}

// Shared-basis accounting: an optimize cycle rebuilds once, then every
// batched evaluation is warm reads.
TEST(MultiLinkSearch, SharedBasisStaysWarmAcrossSearch) {
    MultiLinkScenario scenario = make_multi_link_scenario(31, small_params());
    const ControlPlaneModel plane = ControlPlaneModel::fast();
    control::SetConfig probe;
    probe.config.assign(6, 0);
    const double trial_s = plane.config_trial_time_s(
        probe, scenario.num_links,
        scenario.system.medium().ofdm().num_used());
    const auto objective = control::make_sum_mean_objective(4);
    util::Rng rng(3);
    const auto outcome = scenario.system.optimize_multilink(
        scenario.array_id, *objective, MajorityVoteSearcher(), plane,
        100.0 * trial_s, rng, 2);
    EXPECT_GT(outcome.search.evaluations, 0u);
    const MultiLinkCache::Stats stats =
        scenario.system.multilink_cache_stats();
    EXPECT_EQ(stats.rebuilds, 1u);
    EXPECT_GT(stats.hits, 0u);
}

// Composite presets ride the existing wire format: selectors >= 3
// validate against the live scene and run through optimize_multilink.
TEST(MultiLinkService, PresetsValidateAndOptimize) {
    MultiLinkScenario scenario = make_multi_link_scenario(5, small_params());
    ServeConfig config;
    config.threads = 1;
    control::ServiceEngine engine =
        make_service_engine(scenario.system, config);

    control::OptimizeRequest req;
    req.array_id = 0;
    req.searcher =
        static_cast<std::uint8_t>(control::ServiceSearcher::kGreedy);
    for (const auto preset : {control::ServiceObjective::kMaxMinFair,
                              control::ServiceObjective::kSumMean,
                              control::ServiceObjective::kQosFloor,
                              control::ServiceObjective::kNullVictim}) {
        req.objective = static_cast<std::uint8_t>(preset);
        EXPECT_TRUE(engine.validate(req))
            << "preset " << static_cast<int>(preset);
    }
    req.objective = 200;
    EXPECT_FALSE(engine.validate(req));

    // One composite cycle end to end.
    req.objective =
        static_cast<std::uint8_t>(control::ServiceObjective::kMaxMinFair);
    const control::EngineResult result = engine.optimize(req, 5e-3);
    EXPECT_TRUE(result.ok);
    EXPECT_GT(result.evaluations, 0u);

    // Nulling needs a victim AND a served link: a single-link scene must
    // reject the preset at validation.
    LinkScenario single = make_link_scenario(5, /*line_of_sight=*/false);
    control::ServiceEngine single_engine =
        make_service_engine(single.system, config);
    req.objective =
        static_cast<std::uint8_t>(control::ServiceObjective::kNullVictim);
    req.link_id = 0;
    EXPECT_FALSE(single_engine.validate(req));
    req.objective =
        static_cast<std::uint8_t>(control::ServiceObjective::kMinSnr);
    EXPECT_TRUE(single_engine.validate(req));
}

}  // namespace
}  // namespace press::core
