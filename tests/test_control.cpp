// Tests for the control plane: wire framing, message codec, timing model,
// objectives, searchers and the controller loop.
#include <gtest/gtest.h>

#include <cmath>

#include "control/controller.hpp"
#include "control/message.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "control/wire.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace press::control {
namespace {

// ----------------------------------------------------------------- wire

TEST(Wire, WriterReaderRoundtrip) {
    ByteWriter w;
    w.u8(0xAB);
    w.u16(0x1234);
    w.u32(0xDEADBEEF);
    w.i16(-1234);
    ByteReader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.i16(), -1234);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, LittleEndianLayout) {
    ByteWriter w;
    w.u16(0x1234);
    EXPECT_EQ(w.buffer()[0], 0x34);
    EXPECT_EQ(w.buffer()[1], 0x12);
}

TEST(Wire, ReadPastEndThrows) {
    ByteWriter w;
    w.u8(1);
    ByteReader r(w.buffer());
    r.u8();
    EXPECT_THROW(r.u8(), ProtocolError);
    ByteReader r2(w.buffer());
    EXPECT_THROW(r2.u32(), ProtocolError);
}

TEST(Wire, Crc16KnownVector) {
    // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    const std::vector<std::uint8_t> data = {'1', '2', '3', '4', '5',
                                            '6', '7', '8', '9'};
    EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Wire, CrcDetectsCorruption) {
    std::vector<std::uint8_t> data = {'1', '2', '3'};
    const std::uint16_t before = crc16(data);
    data[1] ^= 0x01;
    EXPECT_NE(crc16(data), before);
}

// -------------------------------------------------------------- message

TEST(Message, SetConfigRoundtrip) {
    SetConfig msg;
    msg.array_id = 7;
    msg.config = {0, 1, 2, 3};
    const auto bytes = encode(Message{msg}, 99);
    const Decoded d = decode(bytes);
    EXPECT_EQ(d.seq, 99u);
    const auto& back = std::get<SetConfig>(d.message);
    EXPECT_EQ(back.array_id, 7);
    EXPECT_EQ(back.config, msg.config);
}

TEST(Message, AckAndRequestRoundtrip) {
    SetConfigAck ack;
    ack.array_id = 3;
    ack.status = 1;
    const auto a = decode(encode(Message{ack}, 5));
    EXPECT_EQ(std::get<SetConfigAck>(a.message).status, 1);

    MeasureRequest req;
    req.link_id = 2;
    req.repeats = 10;
    const auto r = decode(encode(Message{req}, 6));
    EXPECT_EQ(std::get<MeasureRequest>(r.message).repeats, 10);
}

TEST(Message, ReportQuantization) {
    MeasureReport rep;
    rep.link_id = 1;
    rep.set_snr_db({12.344, -3.108, 59.999});
    const auto d = decode(encode(Message{rep}, 7));
    const auto snr = std::get<MeasureReport>(d.message).snr_db();
    ASSERT_EQ(snr.size(), 3u);
    EXPECT_NEAR(snr[0], 12.344, 0.005);  // centi-dB resolution
    EXPECT_NEAR(snr[1], -3.108, 0.005);
    EXPECT_NEAR(snr[2], 59.999, 0.005);
}

TEST(Message, ReportClampsExtremes) {
    MeasureReport rep;
    rep.set_snr_db({1e6, -1e6});
    EXPECT_EQ(rep.snr_centi_db[0], 32767);
    EXPECT_EQ(rep.snr_centi_db[1], -32768);
}

TEST(Message, CorruptedCrcThrows) {
    SetConfig msg;
    msg.config = {1, 2};
    auto bytes = encode(Message{msg}, 1);
    bytes[bytes.size() / 2] ^= 0xFF;
    EXPECT_THROW(decode(bytes), ProtocolError);
}

TEST(Message, TruncationThrows) {
    SetConfig msg;
    msg.config = {1, 2};
    auto bytes = encode(Message{msg}, 1);
    bytes.resize(bytes.size() - 3);
    EXPECT_THROW(decode(bytes), ProtocolError);
    EXPECT_THROW(decode(std::vector<std::uint8_t>{1, 2, 3}), ProtocolError);
}

TEST(Message, BadMagicVersionTypeThrow) {
    SetConfig msg;
    msg.config = {1};
    // Each mutation invalidates the CRC too, so re-frame manually: corrupt
    // the field, then rewrite the trailing CRC to match.
    auto corrupt_and_fix = [](std::vector<std::uint8_t> bytes,
                              std::size_t index, std::uint8_t value) {
        bytes[index] = value;
        const std::uint16_t crc = crc16(bytes.data(), bytes.size() - 2);
        bytes[bytes.size() - 2] = static_cast<std::uint8_t>(crc & 0xFF);
        bytes[bytes.size() - 1] = static_cast<std::uint8_t>(crc >> 8);
        return bytes;
    };
    const auto good = encode(Message{msg}, 1);
    EXPECT_THROW(decode(corrupt_and_fix(good, 0, 0x00)), ProtocolError);
    EXPECT_THROW(decode(corrupt_and_fix(good, 2, 0x09)), ProtocolError);
    EXPECT_THROW(decode(corrupt_and_fix(good, 3, 0x77)), ProtocolError);
}

TEST(Message, EncodedSizeMatches) {
    MeasureReport rep;
    rep.set_snr_db(std::vector<double>(52, 10.0));
    EXPECT_EQ(encoded_size(Message{rep}),
              encode(Message{rep}, 0).size());
    // Header(10) + link(2) + count(2) + 52 * 2 + crc(2).
    EXPECT_EQ(encoded_size(Message{rep}), 10u + 4u + 104u + 2u);
}

TEST(Message, TracedFrameRoundTripCarriesContext) {
    SetConfig msg;
    msg.array_id = 2;
    msg.config = {1, 2};
    const obs::TraceContext ctx{0xABCDEF12u, 42u};
    const auto traced = encode(Message{msg}, 9, ctx);
    // Version 2: trace_id + parent_span (u64 each) after the sequence.
    EXPECT_EQ(traced.size(), encoded_size(Message{msg}) + 16u);
    const Decoded d = decode(traced);
    EXPECT_EQ(d.seq, 9u);
    EXPECT_EQ(d.trace.trace_id, ctx.trace_id);
    EXPECT_EQ(d.trace.parent_span, ctx.parent_span);

    // Without a valid context the three-argument overload emits a plain
    // version-1 frame, byte-identical to the two-argument encoder.
    const auto plain = encode(Message{msg}, 9, obs::TraceContext{});
    EXPECT_EQ(plain, encode(Message{msg}, 9));
    EXPECT_FALSE(decode(plain).trace.valid());
}

// ---------------------------------------------------------------- plane

TEST(Plane, TransferTime) {
    ControlPlaneModel m;
    m.bitrate_bps = 1000.0;
    m.latency_s = 0.5;
    EXPECT_NEAR(m.transfer_time_s(125), 0.5 + 1.0, 1e-12);
}

TEST(Plane, PrototypeSweepTakesSeconds) {
    // The paper: "it takes about 5 seconds to measure all of the [64]
    // combinations". Our prototype model must land in that ballpark.
    const ControlPlaneModel proto = ControlPlaneModel::prototype();
    SetConfig probe;
    probe.config = {0, 0, 0};
    const double sweep =
        64.0 * proto.config_trial_time_s(probe, 1, 52);
    EXPECT_GT(sweep, 3.0);
    EXPECT_LT(sweep, 9.0);
}

TEST(Plane, FastPlaneFitsCoherenceTime) {
    const ControlPlaneModel fast = ControlPlaneModel::fast();
    SetConfig probe;
    probe.config = {0, 0, 0};
    // Tens of trials inside the 80 ms quasi-static coherence window.
    const double trial = fast.config_trial_time_s(probe, 1, 52);
    EXPECT_GT(80e-3 / trial, 20.0);
}

TEST(Plane, SimClock) {
    SimClock clock;
    clock.advance(1.5);
    clock.advance(0.25);
    EXPECT_DOUBLE_EQ(clock.now_s(), 1.75);
    EXPECT_THROW(clock.advance(-1.0), util::ContractViolation);
}

// ------------------------------------------------------------ objective

Observation make_obs(std::vector<std::vector<double>> snr) {
    Observation obs;
    obs.link_snr_db = std::move(snr);
    return obs;
}

TEST(Objective, MinAndMean) {
    const Observation obs = make_obs({{10.0, 20.0, 30.0}});
    EXPECT_DOUBLE_EQ(MinSnrObjective(0).score(obs), 10.0);
    EXPECT_DOUBLE_EQ(MeanSnrObjective(0).score(obs), 20.0);
}

TEST(Objective, MissingLinkThrows) {
    const Observation obs = make_obs({{10.0}});
    EXPECT_THROW(MinSnrObjective(1).score(obs), util::ContractViolation);
}

TEST(Objective, Throughput) {
    EXPECT_DOUBLE_EQ(
        ThroughputObjective(0).score(make_obs({std::vector<double>(52, 30.0)})),
        54.0);
    EXPECT_DOUBLE_EQ(
        ThroughputObjective(0).score(make_obs({std::vector<double>(52, 1.0)})),
        0.0);
}

TEST(Objective, WeightedBands) {
    // Link 0: low band 10 dB, high band 30 dB.
    std::vector<double> snr(8, 10.0);
    for (std::size_t k = 4; k < 8; ++k) snr[k] = 30.0;
    WeightedBandObjective obj({{0, 0, 4, 1.0}, {0, 4, 8, -0.5}}, "test");
    EXPECT_DOUBLE_EQ(obj.score(make_obs({snr})), 10.0 - 15.0);
    EXPECT_EQ(obj.name(), "test");
}

TEST(Objective, HarmonizationFactory) {
    const auto obj = make_harmonization_objective(8, true);
    // Perfect harmonization: comm links strong in their own bands,
    // interference weak there.
    std::vector<double> commA(8, 0.0);
    std::vector<double> commB(8, 0.0);
    std::vector<double> intA(8, 0.0);
    std::vector<double> intB(8, 0.0);
    for (std::size_t k = 0; k < 4; ++k) commA[k] = 40.0;
    for (std::size_t k = 4; k < 8; ++k) commB[k] = 40.0;
    const double good = obj->score(make_obs({commA, commB, intA, intB}));
    // Anti-harmonized: comm links strong in the wrong half.
    const double bad = obj->score(make_obs({commB, commA, commB, commA}));
    EXPECT_GT(good, bad);
}

TEST(Objective, ConditionNumber) {
    Observation obs;
    obs.mimo_condition_db = {3.0, 5.0};
    EXPECT_DOUBLE_EQ(ConditionNumberObjective().score(obs), -4.0);
    EXPECT_THROW(ConditionNumberObjective().score(Observation{}),
                 util::ContractViolation);
}

// --------------------------------------------------------------- search

// A separable synthetic objective with a unique optimum: score is the
// number of elements matching a target configuration.
struct SyntheticProblem {
    surface::Config target;
    double operator()(const surface::Config& c) const {
        double score = 0.0;
        for (std::size_t i = 0; i < c.size(); ++i)
            if (c[i] == target[i]) score += 1.0;
        return score;
    }
};

class SearcherFindsOptimum : public ::testing::TestWithParam<int> {};

TEST_P(SearcherFindsOptimum, OnSeparableProblem) {
    const auto searchers = all_searchers();
    const Searcher& searcher =
        *searchers[static_cast<std::size_t>(GetParam())];
    const surface::ConfigSpace space({4, 4, 4, 4});
    const SyntheticProblem problem{{2, 0, 3, 1}};
    util::Rng rng(42);
    const SearchResult result = searcher.search(
        space, [&](const surface::Config& c) { return problem(c); }, 256,
        rng);
    EXPECT_LE(result.evaluations, 256u);
    EXPECT_DOUBLE_EQ(result.best_score, 4.0)
        << "searcher " << searcher.name();
    EXPECT_EQ(result.best_config, problem.target);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SearcherFindsOptimum,
                         ::testing::Range(0, 5));

class SearcherRespectsBudget : public ::testing::TestWithParam<int> {};

TEST_P(SearcherRespectsBudget, NeverExceeds) {
    const auto searchers = all_searchers();
    const Searcher& searcher =
        *searchers[static_cast<std::size_t>(GetParam())];
    const surface::ConfigSpace space({4, 4, 4, 4, 4, 4});
    std::size_t calls = 0;
    util::Rng rng(1);
    const SearchResult result = searcher.search(
        space,
        [&](const surface::Config&) {
            ++calls;
            return 0.0;
        },
        37, rng);
    EXPECT_LE(calls, 37u);
    EXPECT_EQ(result.evaluations, calls);
    EXPECT_EQ(result.trajectory.size(), calls);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SearcherRespectsBudget,
                         ::testing::Range(0, 5));

class SearcherTrajectory : public ::testing::TestWithParam<int> {};

TEST_P(SearcherTrajectory, BestScoreIsMonotone) {
    const auto searchers = all_searchers();
    const Searcher& searcher =
        *searchers[static_cast<std::size_t>(GetParam())];
    const surface::ConfigSpace space({3, 3, 3});
    util::Rng rng(9);
    util::Rng noise(10);
    const SearchResult result = searcher.search(
        space,
        [&](const surface::Config&) { return noise.uniform(0.0, 1.0); }, 60,
        rng);
    for (std::size_t i = 1; i < result.trajectory.size(); ++i)
        EXPECT_GE(result.trajectory[i], result.trajectory[i - 1]);
    EXPECT_DOUBLE_EQ(result.trajectory.back(), result.best_score);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SearcherTrajectory,
                         ::testing::Range(0, 5));

TEST(Search, ExhaustiveCoversWholeSpaceInOrder) {
    const surface::ConfigSpace space({2, 3});
    std::vector<surface::Config> seen;
    util::Rng rng(1);
    ExhaustiveSearcher().search(
        space,
        [&](const surface::Config& c) {
            seen.push_back(c);
            return 0.0;
        },
        100, rng);
    EXPECT_EQ(seen.size(), 6u);
    for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(seen[i], space.at(i));
}

TEST(Search, DeterministicGivenSeed) {
    const surface::ConfigSpace space({4, 4, 4});
    const SyntheticProblem problem{{1, 2, 3}};
    for (const auto& searcher : all_searchers()) {
        util::Rng rng_a(5);
        util::Rng rng_b(5);
        const auto ra = searcher->search(
            space, [&](const surface::Config& c) { return problem(c); }, 50,
            rng_a);
        const auto rb = searcher->search(
            space, [&](const surface::Config& c) { return problem(c); }, 50,
            rng_b);
        EXPECT_EQ(ra.best_config, rb.best_config) << searcher->name();
        EXPECT_EQ(ra.trajectory, rb.trajectory) << searcher->name();
    }
}

// ------------------------------------------------------------ controller

TEST(Controller, OptimizeAppliesBestConfig) {
    const surface::ConfigSpace space({4, 4});
    surface::Config applied;
    const SyntheticProblem problem{{3, 1}};
    Controller controller(
        ControlPlaneModel::fast(),
        [&](const surface::Config& c) {
            applied = c;
            return true;
        },
        [&]() {
            Observation obs;
            obs.link_snr_db = {{problem(applied)}};
            return obs;
        },
        1, 52);
    util::Rng rng(3);
    const MinSnrObjective objective(0);
    const ExhaustiveSearcher searcher;
    const OptimizationOutcome outcome =
        controller.optimize(space, objective, searcher, 1.0, rng);
    EXPECT_EQ(outcome.search.best_config, (surface::Config{3, 1}));
    EXPECT_EQ(applied, (surface::Config{3, 1}));  // left applied
    EXPECT_DOUBLE_EQ(outcome.search.best_score, 2.0);
    EXPECT_GT(outcome.elapsed_s, 0.0);
    EXPECT_NEAR(outcome.elapsed_s,
                outcome.trial_cost_s * outcome.search.evaluations, 1e-12);
}

TEST(Controller, BudgetLimitsTrials) {
    const surface::ConfigSpace space({4, 4, 4});
    Controller controller(
        ControlPlaneModel::prototype(),
        [](const surface::Config&) { return true; },
        []() {
            Observation obs;
            obs.link_snr_db = {{1.0}};
            return obs;
        },
        1, 52);
    // The prototype pace affords only a handful of trials in 500 ms.
    const std::size_t trials = controller.trials_within(space, 0.5);
    EXPECT_GE(trials, 1u);
    EXPECT_LT(trials, 10u);
    util::Rng rng(4);
    const MinSnrObjective objective(0);
    const OptimizationOutcome outcome = controller.optimize(
        space, objective, ExhaustiveSearcher(), 0.5, rng);
    EXPECT_LE(outcome.search.evaluations, trials);
    EXPECT_TRUE(outcome.budget_limited);
}

TEST(Controller, RequiresCallbacks) {
    EXPECT_THROW(Controller(ControlPlaneModel::fast(), nullptr,
                            []() { return Observation{}; }, 1, 52),
                 util::ContractViolation);
}

}  // namespace
}  // namespace press::control
