// Unit and property tests for the util layer: units, RNG, complex vectors,
// FFTs, matrices/SVD and statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "util/contracts.hpp"
#include "util/cvec.hpp"
#include "util/fft.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace press::util {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, DbRoundtrip) {
    EXPECT_NEAR(db_to_linear(linear_to_db(42.0)), 42.0, 1e-12);
    EXPECT_NEAR(linear_to_db(db_to_linear(-13.0)), -13.0, 1e-12);
    EXPECT_DOUBLE_EQ(linear_to_db(10.0), 10.0);
    EXPECT_DOUBLE_EQ(linear_to_db(1.0), 0.0);
}

TEST(Units, AmplitudeDb) {
    EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
    EXPECT_NEAR(db_to_amplitude(-20.0), 0.1, 1e-12);
}

TEST(Units, DbmWatt) {
    EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-15);
    EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(17.0)), 17.0, 1e-12);
}

TEST(Units, Wavelength) {
    // 2.462 GHz Wi-Fi channel 11 -> ~12.18 cm.
    EXPECT_NEAR(wavelength(2.462e9), 0.12177, 1e-4);
}

TEST(Units, ThermalNoiseFloor) {
    // kT at 290 K is -174 dBm/Hz; in 1 Hz with 0 dB NF.
    EXPECT_NEAR(watt_to_dbm(thermal_noise_watt(1.0, 0.0)), -174.0, 0.2);
    // Noise figure adds straight dB.
    EXPECT_NEAR(watt_to_dbm(thermal_noise_watt(1.0, 7.0)), -167.0, 0.2);
}

TEST(Units, WrapAngle) {
    EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-12);
    EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrap_angle(-3.0 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrap_angle(kTwoPi * 7 + 0.25), 0.25, 1e-9);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicFromSeed) {
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i)
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntInclusive) {
    Rng rng(8);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= (v == 0);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
    Rng rng(9);
    std::vector<double> xs(20000);
    for (double& x : xs) x = rng.gaussian(1.5, 2.0);
    EXPECT_NEAR(mean(xs), 1.5, 0.1);
    EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, ComplexGaussianVariance) {
    Rng rng(10);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) acc += std::norm(rng.complex_gaussian(3.0));
    EXPECT_NEAR(acc / n, 3.0, 0.15);
}

TEST(Rng, UnitPhasorOnCircle) {
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(std::abs(rng.unit_phasor()), 1.0, 1e-12);
}

TEST(Rng, ChanceExtremes) {
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkDecorrelates) {
    Rng parent(13);
    Rng child = parent.fork();
    // The child stream should not reproduce the parent's next values.
    int same = 0;
    for (int i = 0; i < 50; ++i)
        if (parent.uniform(0.0, 1.0) == child.uniform(0.0, 1.0)) ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ContractViolations) {
    Rng rng(14);
    EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
    EXPECT_THROW(rng.chance(1.5), ContractViolation);
    EXPECT_THROW(rng.gaussian(0.0, -1.0), ContractViolation);
}

// ----------------------------------------------------------------- cvec

TEST(CVec, ElementwiseOps) {
    const CVec a = {{1, 2}, {3, 4}};
    const CVec b = {{5, 6}, {7, 8}};
    const CVec sum = add(a, b);
    EXPECT_EQ(sum[0], (cd{6, 8}));
    EXPECT_EQ(sum[1], (cd{10, 12}));
    const CVec diff = subtract(b, a);
    EXPECT_EQ(diff[0], (cd{4, 4}));
    const CVec prod = hadamard(a, b);
    EXPECT_EQ(prod[0], (cd{1, 2}) * (cd{5, 6}));
    const CVec quot = divide(prod, b);
    EXPECT_NEAR(std::abs(quot[0] - a[0]), 0.0, 1e-12);
}

TEST(CVec, MismatchedLengthsThrow) {
    const CVec a = {{1, 0}};
    const CVec b = {{1, 0}, {2, 0}};
    EXPECT_THROW(add(a, b), ContractViolation);
    EXPECT_THROW(inner(a, b), ContractViolation);
}

TEST(CVec, DivideByZeroThrows) {
    const CVec a = {{1, 0}};
    const CVec z = {{0, 0}};
    EXPECT_THROW(divide(a, z), ContractViolation);
}

TEST(CVec, InnerConjugateSymmetry) {
    const CVec a = {{1, 2}, {3, -1}};
    const CVec b = {{0, 1}, {2, 2}};
    EXPECT_NEAR(std::abs(inner(a, b) - std::conj(inner(b, a))), 0.0, 1e-12);
}

TEST(CVec, EnergyAndPower) {
    const CVec a = {{3, 4}, {0, 0}};
    EXPECT_DOUBLE_EQ(energy(a), 25.0);
    EXPECT_DOUBLE_EQ(mean_power(a), 12.5);
    EXPECT_DOUBLE_EQ(mean_power(CVec{}), 0.0);
}

TEST(CVec, ConvolveKnown) {
    const CVec a = {{1, 0}, {2, 0}};
    const CVec b = {{1, 0}, {0, 0}, {3, 0}};
    const CVec c = convolve(a, b);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(c[1].real(), 2.0, 1e-12);
    EXPECT_NEAR(c[2].real(), 3.0, 1e-12);
    EXPECT_NEAR(c[3].real(), 6.0, 1e-12);
}

// ------------------------------------------------------------------ fft

class FftRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundtrip, IfftInvertsFft) {
    Rng rng(GetParam());
    CVec x(GetParam());
    for (cd& v : x) v = rng.complex_gaussian(1.0);
    const CVec y = ifft(fft(x));
    EXPECT_LT(max_abs_diff(x, y), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundtrip,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 17, 64,
                                           100, 128, 256, 1000));

TEST(Fft, ImpulseIsFlat) {
    CVec x(64, cd{0, 0});
    x[0] = {1, 0};
    const CVec y = fft(x);
    for (const cd& v : y) EXPECT_NEAR(std::abs(v - cd{1, 0}), 0.0, 1e-12);
}

TEST(Fft, ConstantIsImpulse) {
    CVec x(32, cd{1, 0});
    const CVec y = fft(x);
    EXPECT_NEAR(std::abs(y[0]), 32.0, 1e-9);
    for (std::size_t k = 1; k < y.size(); ++k)
        EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-9);
}

TEST(Fft, MatchesNaiveDft) {
    // Including a non-power-of-two size to cover Bluestein.
    for (std::size_t n : {7u, 16u, 20u}) {
        Rng rng(n);
        CVec x(n);
        for (cd& v : x) v = rng.complex_gaussian(1.0);
        const CVec y = fft(x);
        for (std::size_t k = 0; k < n; ++k) {
            cd ref{0, 0};
            for (std::size_t i = 0; i < n; ++i)
                ref += x[i] * std::polar(1.0, -kTwoPi *
                                                  static_cast<double>(k * i) /
                                                  static_cast<double>(n));
            EXPECT_NEAR(std::abs(y[k] - ref), 0.0, 1e-8)
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(Fft, ParsevalHolds) {
    Rng rng(99);
    CVec x(128);
    for (cd& v : x) v = rng.complex_gaussian(1.0);
    const CVec y = fft(x);
    EXPECT_NEAR(energy(y), energy(x) * 128.0, 1e-6 * energy(y));
}

TEST(Fft, Linearity) {
    Rng rng(5);
    CVec a(64), b(64);
    for (cd& v : a) v = rng.complex_gaussian(1.0);
    for (cd& v : b) v = rng.complex_gaussian(1.0);
    const cd s{2.0, -1.0};
    const CVec lhs = fft(add(scale(a, s), b));
    const CVec rhs = add(scale(fft(a), s), fft(b));
    EXPECT_LT(max_abs_diff(lhs, rhs), 1e-8);
}

TEST(Fft, RotateLeft) {
    const CVec v = {{1, 0}, {2, 0}, {3, 0}};
    const CVec r = rotate_left(v, 1);
    EXPECT_NEAR(r[0].real(), 2.0, 1e-15);
    EXPECT_NEAR(r[2].real(), 1.0, 1e-15);
    EXPECT_TRUE(rotate_left(CVec{}, 3).empty());
}

TEST(Fft, PowerOfTwoDetection) {
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(64));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(100));
}

// --------------------------------------------------------------- matrix

TEST(Matrix, MultiplyKnown) {
    const Matrix a = Matrix::from_rows({{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}});
    const Matrix b = Matrix::from_rows({{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}});
    const Matrix c = a.multiply(b);
    EXPECT_NEAR(c.at(0, 0).real(), 2.0, 1e-12);
    EXPECT_NEAR(c.at(0, 1).real(), 1.0, 1e-12);
    EXPECT_NEAR(c.at(1, 0).real(), 4.0, 1e-12);
    EXPECT_NEAR(c.at(1, 1).real(), 3.0, 1e-12);
}

TEST(Matrix, HermitianTranspose) {
    const Matrix a = Matrix::from_rows({{{1, 2}, {3, 4}}});
    const Matrix h = a.hermitian();
    EXPECT_EQ(h.rows(), 2u);
    EXPECT_EQ(h.cols(), 1u);
    EXPECT_EQ(h.at(0, 0), (cd{1, -2}));
    EXPECT_EQ(h.at(1, 0), (cd{3, -4}));
}

class MatrixInverse : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixInverse, InverseTimesSelfIsIdentity) {
    const std::size_t n = GetParam();
    Rng rng(n * 31);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a.at(r, c) = rng.complex_gaussian(1.0);
    const Matrix prod = a.multiply(a.inverse());
    const Matrix eye = Matrix::identity(n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_NEAR(std::abs(prod.at(r, c) - eye.at(r, c)), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixInverse, ::testing::Values(1, 2, 3, 5, 8));

TEST(Matrix, SingularInverseThrows) {
    Matrix a(2, 2);
    a.at(0, 0) = {1, 0};
    a.at(0, 1) = {2, 0};
    a.at(1, 0) = {2, 0};
    a.at(1, 1) = {4, 0};
    EXPECT_THROW(a.inverse(), std::domain_error);
}

TEST(Matrix, NonSquareInverseThrows) {
    EXPECT_THROW(Matrix(2, 3).inverse(), std::domain_error);
}

TEST(Matrix, SingularValuesOfDiagonal) {
    Matrix a(2, 2);
    a.at(0, 0) = {3, 0};
    a.at(1, 1) = {0, 4};  // phase must not matter
    const auto sv = a.singular_values();
    EXPECT_NEAR(sv[0], 4.0, 1e-12);
    EXPECT_NEAR(sv[1], 3.0, 1e-12);
    EXPECT_NEAR(a.condition_number(), 4.0 / 3.0, 1e-12);
}

TEST(Matrix, ConditionNumberOfIdentityIsOne) {
    EXPECT_NEAR(Matrix::identity(4).condition_number(), 1.0, 1e-10);
    EXPECT_NEAR(Matrix::identity(2).condition_number_db(), 0.0, 1e-9);
}

class MatrixSvdProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixSvdProperty, FrobeniusMatchesSingularValues) {
    const std::size_t n = GetParam();
    Rng rng(n * 17 + 3);
    Matrix a(n, n + 1);  // also exercise non-square
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            a.at(r, c) = rng.complex_gaussian(1.0);
    const auto sv = a.singular_values();
    double sum_sq = 0.0;
    for (double s : sv) sum_sq += s * s;
    const double fro = a.frobenius_norm();
    EXPECT_NEAR(sum_sq, fro * fro, 1e-8 * fro * fro);
    // Descending and nonnegative.
    for (std::size_t i = 0; i + 1 < sv.size(); ++i)
        EXPECT_GE(sv[i], sv[i + 1] - 1e-12);
    EXPECT_GE(sv.back(), 0.0);
    EXPECT_GE(a.condition_number(), 1.0 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSvdProperty,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Matrix, SingularValuesPhaseInvariant) {
    Rng rng(77);
    Matrix a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a.at(r, c) = rng.complex_gaussian(1.0);
    Matrix b = a;
    const cd phase = std::polar(1.0, 1.234);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) b.at(r, c) *= phase;
    const auto sa = a.singular_values();
    const auto sb = b.singular_values();
    for (std::size_t i = 0; i < sa.size(); ++i)
        EXPECT_NEAR(sa[i], sb[i], 1e-9);
}

TEST(Matrix, RankDeficientConditionThrows) {
    Matrix a(2, 2);
    a.at(0, 0) = {1, 0};
    a.at(0, 1) = {1, 0};
    a.at(1, 0) = {1, 0};
    a.at(1, 1) = {1, 0};
    EXPECT_THROW(a.condition_number(), std::domain_error);
}

TEST(Matrix, FromRowsValidation) {
    EXPECT_THROW(Matrix::from_rows({}), ContractViolation);
    EXPECT_THROW(Matrix::from_rows({{{1, 0}}, {{1, 0}, {2, 0}}}),
                 ContractViolation);
}

TEST(Matrix, AtOutOfRangeThrows) {
    Matrix a(2, 2);
    EXPECT_THROW(a.at(2, 0), ContractViolation);
    EXPECT_THROW(a.at(0, 2), ContractViolation);
}

// ---------------------------------------------------------------- stats

TEST(Stats, BasicMoments) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(median(v), 2.5);
    EXPECT_DOUBLE_EQ(min_value(v), 1.0);
    EXPECT_DOUBLE_EQ(max_value(v), 4.0);
}

TEST(Stats, Percentiles) {
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
    EXPECT_NEAR(percentile(v, 25.0), 20.0, 1e-12);
}

TEST(Stats, EmptySampleThrows) {
    EXPECT_THROW(mean({}), ContractViolation);
    EXPECT_THROW(variance({1.0}), ContractViolation);
    EXPECT_THROW(percentile({}, 50.0), ContractViolation);
    EXPECT_THROW(percentile({1.0}, 120.0), ContractViolation);
}

TEST(Stats, EmpiricalDistributionCdf) {
    EmpiricalDistribution d({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
    EXPECT_DOUBLE_EQ(d.ccdf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
    EXPECT_NEAR(d.quantile(0.5), 2.5, 1e-12);
}

TEST(Stats, CdfGridMonotone) {
    Rng rng(3);
    std::vector<double> xs(500);
    for (double& x : xs) x = rng.gaussian(0.0, 1.0);
    EmpiricalDistribution d(xs);
    const auto grid = d.cdf_grid(40);
    for (std::size_t i = 1; i < grid.size(); ++i) {
        EXPECT_LE(grid[i - 1].second, grid[i].second + 1e-12);
        EXPECT_LE(grid[i - 1].first, grid[i].first);
    }
    EXPECT_NEAR(grid.back().second, 1.0, 1e-12);
}

TEST(Stats, IntegerHistogram) {
    const auto bins = integer_histogram({0.0, 1.2, 0.9, 5.0, 9.0}, 5);
    EXPECT_EQ(bins[0], 1u);
    EXPECT_EQ(bins[1], 2u);  // 1.2 and 0.9 both round to 1
    EXPECT_EQ(bins[5], 1u);  // 9.0 is out of range and dropped
}

TEST(Stats, Fractions) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(fraction_above(v, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(fraction_below(v, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(fraction_above(v, 4.0), 0.0);
}

}  // namespace
}  // namespace press::util
