// Bit-identity property tests for the split-complex kernel layer: the
// scalar and native dispatch flavors must agree to the last bit on every
// kernel, across randomized sizes (including every tail shape of the
// 4-lane blocked reduction) and unaligned span offsets; and the fused
// sounding kernels must reproduce the phy reference arithmetic
// (combine_ltf_estimates, ChannelEstimate::snr_db) bitwise.
#include <gtest/gtest.h>

#include <complex>
#include <cstddef>
#include <vector>

#include "phy/chanest.hpp"
#include "util/cvec.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

namespace press::util::kernels {
namespace {

constexpr Dispatch kBoth[] = {Dispatch::kScalar, Dispatch::kNative};

/// Sizes covering each blocked-reduction tail (n mod 4 in {0,1,2,3}),
/// the degenerate n=1..4, and a few realistic subcarrier counts.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 52, 63, 64, 117, 128};

std::vector<double> random_span(std::size_t n, Rng& rng, double lo = -2.0,
                                double hi = 2.0) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform(lo, hi);
    return v;
}

TEST(Kernels, DispatchFlavorsAgreeBitwiseOnElementwiseOps) {
    Rng rng(101);
    for (const std::size_t n : kSizes) {
        // Offset the spans so the native flavor also runs unaligned.
        for (const std::size_t offset : {0u, 1u, 3u}) {
            const std::vector<double> re = random_span(n + offset, rng);
            const std::vector<double> im = random_span(n + offset, rng);
            const std::vector<double> row_re =
                random_span(n + offset, rng);
            const std::vector<double> row_im =
                random_span(n + offset, rng);

            std::vector<double> dst_re[2], dst_im[2];
            for (int f = 0; f < 2; ++f) {
                dst_re[f].assign(n, 0.0);
                dst_im[f].assign(n, 0.0);
                copy(kBoth[f], re.data() + offset, im.data() + offset,
                     dst_re[f].data(), dst_im[f].data(), n);
                accumulate(kBoth[f], row_re.data() + offset,
                           row_im.data() + offset, dst_re[f].data(),
                           dst_im[f].data(), n);
            }
            EXPECT_EQ(dst_re[0], dst_re[1]) << "n=" << n;
            EXPECT_EQ(dst_im[0], dst_im[1]) << "n=" << n;
        }
    }
}

TEST(Kernels, DispatchFlavorsAgreeBitwiseOnReductions) {
    Rng rng(202);
    for (const std::size_t n : kSizes) {
        for (int round = 0; round < 4; ++round) {
            const std::vector<double> x = random_span(n, rng);
            const std::vector<double> re = random_span(n, rng);
            const std::vector<double> im = random_span(n, rng);
            const std::vector<double> var =
                random_span(n, rng, 1e-6, 1.0);
            EXPECT_EQ(min(Dispatch::kScalar, x.data(), n),
                      min(Dispatch::kNative, x.data(), n));
            EXPECT_EQ(mean(Dispatch::kScalar, x.data(), n),
                      mean(Dispatch::kNative, x.data(), n));
            EXPECT_EQ(abs2_min(Dispatch::kScalar, re.data(), im.data(), n),
                      abs2_min(Dispatch::kNative, re.data(), im.data(), n));
            EXPECT_EQ(
                abs2_mean(Dispatch::kScalar, re.data(), im.data(), n),
                abs2_mean(Dispatch::kNative, re.data(), im.data(), n));
            EXPECT_EQ(snr_db_min(Dispatch::kScalar, re.data(), im.data(),
                                 var.data(), n, 60.0, 0.0),
                      snr_db_min(Dispatch::kNative, re.data(), im.data(),
                                 var.data(), n, 60.0, 0.0));
            EXPECT_EQ(snr_db_mean(Dispatch::kScalar, re.data(), im.data(),
                                  var.data(), n, 60.0, 0.0),
                      snr_db_mean(Dispatch::kNative, re.data(), im.data(),
                                  var.data(), n, 60.0, 0.0));
        }
    }
}

TEST(Kernels, DispatchFlavorsAgreeBitwiseOnLtfCombining) {
    Rng rng(303);
    for (const std::size_t n : kSizes) {
        for (const std::size_t repeats : {2u, 3u, 4u, 7u}) {
            const std::vector<double> raw_re =
                random_span(repeats * n, rng);
            const std::vector<double> raw_im =
                random_span(repeats * n, rng);
            std::vector<double> mean_re[2], mean_im[2], noise_var[2];
            for (int f = 0; f < 2; ++f) {
                mean_re[f].assign(n, -1.0);
                mean_im[f].assign(n, -1.0);
                noise_var[f].assign(n, -1.0);
                ltf_mean_var(kBoth[f], raw_re.data(), raw_im.data(),
                             repeats, n, mean_re[f].data(),
                             mean_im[f].data(), noise_var[f].data());
            }
            EXPECT_EQ(mean_re[0], mean_re[1]) << "n=" << n;
            EXPECT_EQ(mean_im[0], mean_im[1]) << "n=" << n;
            EXPECT_EQ(noise_var[0], noise_var[1]) << "n=" << n;
        }
    }
}

TEST(Kernels, GatherAccumulateEqualsRowByRowAccumulate) {
    Rng rng(404);
    const std::size_t n = 52;
    const std::size_t table_rows = 12;
    const std::vector<double> table_re = random_span(table_rows * n, rng);
    const std::vector<double> table_im = random_span(table_rows * n, rng);
    const std::vector<std::size_t> rows = {3, 0, 7, 7, 11, 2};
    for (const Dispatch d : kBoth) {
        std::vector<double> a_re(n, 0.5), a_im(n, -0.5);
        std::vector<double> b_re(n, 0.5), b_im(n, -0.5);
        gather_accumulate(d, table_re.data(), table_im.data(), rows.data(),
                          rows.size(), a_re.data(), a_im.data(), n);
        for (const std::size_t r : rows)
            accumulate(d, table_re.data() + r * n, table_im.data() + r * n,
                       b_re.data(), b_im.data(), n);
        EXPECT_EQ(a_re, b_re);
        EXPECT_EQ(a_im, b_im);
    }
}

TEST(Kernels, LtfCombiningMatchesPhyReferenceBitwise) {
    Rng rng(505);
    for (const std::size_t n : {1u, 5u, 52u}) {
        for (const std::size_t repeats : {2u, 4u}) {
            // Build the same raw estimates in both layouts.
            std::vector<util::CVec> raw_aos(repeats, util::CVec(n));
            std::vector<double> raw_re(repeats * n), raw_im(repeats * n);
            for (std::size_t r = 0; r < repeats; ++r)
                for (std::size_t k = 0; k < n; ++k) {
                    const std::complex<double> z = rng.complex_gaussian();
                    raw_aos[r][k] = z;
                    raw_re[r * n + k] = z.real();
                    raw_im[r * n + k] = z.imag();
                }
            const phy::ChannelEstimate ref =
                phy::combine_ltf_estimates(raw_aos);
            for (const Dispatch d : kBoth) {
                std::vector<double> mean_re(n), mean_im(n), noise_var(n);
                ltf_mean_var(d, raw_re.data(), raw_im.data(), repeats, n,
                             mean_re.data(), mean_im.data(),
                             noise_var.data());
                for (std::size_t k = 0; k < n; ++k) {
                    EXPECT_EQ(mean_re[k], ref.h[k].real());
                    EXPECT_EQ(mean_im[k], ref.h[k].imag());
                    EXPECT_EQ(noise_var[k], ref.noise_var[k]);
                }
                // And the SNR span (plus its fused reductions) matches
                // the reference estimate's.
                const std::vector<double> want =
                    ref.snr_db(phy::kSnrCapDb, phy::kSnrFloorDb);
                std::vector<double> got(n);
                snr_db_into(d, mean_re.data(), mean_im.data(),
                            noise_var.data(), n, phy::kSnrCapDb,
                            phy::kSnrFloorDb, got.data());
                EXPECT_EQ(got, want);
                EXPECT_EQ(snr_db_min(d, mean_re.data(), mean_im.data(),
                                     noise_var.data(), n, phy::kSnrCapDb,
                                     phy::kSnrFloorDb),
                          min(d, want.data(), n));
                EXPECT_EQ(snr_db_mean(d, mean_re.data(), mean_im.data(),
                                      noise_var.data(), n, phy::kSnrCapDb,
                                      phy::kSnrFloorDb),
                          mean(d, want.data(), n));
            }
        }
    }
}

TEST(Kernels, SnrClampingMatchesPhyEdgeCases) {
    // Degenerate subcarriers: zero signal floors, zero/negative noise
    // variance caps (unless the signal is also zero) — exactly
    // ChannelEstimate::snr_db's rules.
    const std::vector<double> re = {0.0, 1.0, 1.0, 1e-12, 0.0};
    const std::vector<double> im = {0.0, 0.0, 1.0, 0.0, 0.0};
    const std::vector<double> var = {1.0, 0.0, -1.0, 1.0, 0.0};
    phy::ChannelEstimate ref;
    for (std::size_t k = 0; k < re.size(); ++k) {
        ref.h.push_back({re[k], im[k]});
        ref.noise_var.push_back(var[k]);
    }
    const std::vector<double> want = ref.snr_db();
    for (const Dispatch d : kBoth) {
        std::vector<double> got(re.size());
        snr_db_into(d, re.data(), im.data(), var.data(), re.size(),
                    phy::kSnrCapDb, phy::kSnrFloorDb, got.data());
        EXPECT_EQ(got, want);
        EXPECT_EQ(snr_db_min(d, re.data(), im.data(), var.data(),
                             re.size(), phy::kSnrCapDb, phy::kSnrFloorDb),
                  min(d, want.data(), want.size()));
    }
}

TEST(Kernels, MinMatchesSequentialSemantics) {
    // The blocked min must still BE the minimum (association only ever
    // changes comparison order, never the winner).
    Rng rng(606);
    for (const std::size_t n : kSizes) {
        const std::vector<double> x = random_span(n, rng);
        double seq = x[0];
        for (const double v : x) seq = std::min(seq, v);
        for (const Dispatch d : kBoth)
            EXPECT_EQ(min(d, x.data(), n), seq);
    }
}

TEST(Kernels, InterleaveRoundTrips) {
    Rng rng(707);
    const std::size_t n = 52;
    const std::vector<double> re = random_span(n, rng);
    const std::vector<double> im = random_span(n, rng);
    util::CVec aos(n);
    interleave(re.data(), im.data(), aos.data(), n);
    std::vector<double> re2(n), im2(n);
    deinterleave(aos.data(), re2.data(), im2.data(), n);
    EXPECT_EQ(re, re2);
    EXPECT_EQ(im, im2);
}

TEST(Kernels, DispatchOverrideAndNames) {
    const Dispatch before = active();
    set_dispatch(Dispatch::kScalar);
    EXPECT_EQ(active(), Dispatch::kScalar);
    set_dispatch(Dispatch::kNative);
    EXPECT_EQ(active(), Dispatch::kNative);
    set_dispatch(before);
    EXPECT_STREQ(dispatch_name(Dispatch::kScalar), "scalar");
    EXPECT_STREQ(dispatch_name(Dispatch::kNative), "native");
}

}  // namespace
}  // namespace press::util::kernels
