// Tests for the control-plane transport: lossy channel, array-side agent,
// reliable session — including loss, corruption, duplicate-suppression and
// give-up behaviour.
#include <gtest/gtest.h>

#include "control/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "press/element.hpp"
#include "util/contracts.hpp"

namespace press::control {
namespace {

surface::Array make_array() {
    surface::Array array;
    for (int i = 0; i < 3; ++i) {
        array.add_element(surface::Element::sp4t_prototype(
            {1.0 + i, 0, 1}, em::Antenna::omni(12.0), 2.462e9));
    }
    return array;
}

LossyChannel perfect() { return LossyChannel(0.0, 0.0, util::Rng(1)); }

TEST(LossyChannel, PerfectChannelIsTransparent) {
    LossyChannel ch = perfect();
    const std::vector<std::uint8_t> frame = {1, 2, 3, 4};
    const auto out = ch.transmit(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, frame);
    EXPECT_EQ(ch.frames_carried(), 1u);
    EXPECT_EQ(ch.bits_flipped(), 0u);
}

TEST(LossyChannel, DropsFrames) {
    LossyChannel ch(0.0, 0.9, util::Rng(2));
    int dropped = 0;
    for (int i = 0; i < 200; ++i)
        if (!ch.transmit({0xAA})) ++dropped;
    EXPECT_GT(dropped, 140);
    EXPECT_EQ(ch.frames_dropped(), static_cast<std::size_t>(dropped));
}

TEST(LossyChannel, FlipsBitsAtConfiguredRate) {
    LossyChannel ch(0.01, 0.0, util::Rng(3));
    const std::vector<std::uint8_t> frame(1000, 0x00);
    (void)ch.transmit(frame);
    // 8000 bits at 1%: expect ~80 flips.
    EXPECT_GT(ch.bits_flipped(), 40u);
    EXPECT_LT(ch.bits_flipped(), 140u);
}

TEST(LossyChannel, InvalidRatesThrow) {
    EXPECT_THROW(LossyChannel(1.0, 0.0, util::Rng(1)),
                 util::ContractViolation);
    EXPECT_THROW(LossyChannel(0.0, -0.1, util::Rng(1)),
                 util::ContractViolation);
}

TEST(ArrayAgent, AppliesValidConfig) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 5);
    SetConfig msg;
    msg.array_id = 5;
    msg.config = {1, 2, 3};
    const auto response = agent.handle(encode(Message{msg}, 10));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(array.current_config(), (surface::Config{1, 2, 3}));
    EXPECT_EQ(agent.applied(), 1u);
    const Decoded d = decode(*response);
    EXPECT_EQ(d.seq, 10u);
    EXPECT_EQ(std::get<SetConfigAck>(d.message).status, 0);
}

TEST(ArrayAgent, IgnoresForeignArray) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 5);
    SetConfig msg;
    msg.array_id = 6;  // not ours
    msg.config = {1, 2, 3};
    EXPECT_FALSE(agent.handle(encode(Message{msg}, 1)).has_value());
    EXPECT_EQ(array.current_config(), (surface::Config{0, 0, 0}));
}

TEST(ArrayAgent, DropsCorruptedFrames) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 5);
    SetConfig msg;
    msg.array_id = 5;
    msg.config = {1, 2, 3};
    auto frame = encode(Message{msg}, 1);
    frame[frame.size() / 2] ^= 0x55;
    EXPECT_FALSE(agent.handle(frame).has_value());
    EXPECT_EQ(agent.rejected(), 1u);
    EXPECT_EQ(array.current_config(), (surface::Config{0, 0, 0}));
}

TEST(ArrayAgent, SuppressesDuplicateSeq) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 5);
    SetConfig msg;
    msg.array_id = 5;
    msg.config = {3, 3, 3};
    const auto frame = encode(Message{msg}, 42);
    ASSERT_TRUE(agent.handle(frame).has_value());
    // Retransmission: acked again but applied only once.
    const auto again = agent.handle(frame);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(agent.applied(), 1u);
    EXPECT_EQ(agent.duplicates(), 1u);
    EXPECT_EQ(std::get<SetConfigAck>(decode(*again).message).status, 0);
}

TEST(ArrayAgent, SuppressesReorderedStaleFrames) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 5);
    SetConfig old_msg;
    old_msg.array_id = 5;
    old_msg.config = {1, 1, 1};
    const auto old_frame = encode(Message{old_msg}, 3);
    SetConfig new_msg;
    new_msg.array_id = 5;
    new_msg.config = {2, 2, 2};
    // The newer frame (seq 5) arrives first; the delayed older frame
    // (seq 3) surfaces afterwards, e.g. from a retransmit buffer.
    ASSERT_TRUE(agent.handle(encode(Message{new_msg}, 5)).has_value());
    const auto late = agent.handle(old_frame);
    // The stale frame is acked (so a retransmitting sender stops) but the
    // switches stay at the newer configuration.
    ASSERT_TRUE(late.has_value());
    EXPECT_EQ(std::get<SetConfigAck>(decode(*late).message).status, 0);
    EXPECT_EQ(array.current_config(), (surface::Config{2, 2, 2}));
    EXPECT_EQ(agent.applied(), 1u);
    EXPECT_EQ(agent.stale(), 1u);
    EXPECT_EQ(agent.duplicates(), 0u);
}

TEST(ArrayAgent, RejectsInvalidConfigWithNack) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 5);
    SetConfig msg;
    msg.array_id = 5;
    msg.config = {9, 9, 9};  // out of range for SP4T elements
    const auto response = agent.handle(encode(Message{msg}, 1));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(std::get<SetConfigAck>(decode(*response).message).status, 1);
    EXPECT_EQ(agent.applied(), 0u);
    EXPECT_EQ(array.current_config(), (surface::Config{0, 0, 0}));
}

TEST(ReliableSession, DeliversOverPerfectChannel) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 0);
    ReliableSession session(agent, perfect(), perfect());
    EXPECT_TRUE(session.apply(0, {2, 1, 0}));
    EXPECT_EQ(array.current_config(), (surface::Config{2, 1, 0}));
    EXPECT_EQ(session.stats().attempts, 1u);
    EXPECT_EQ(session.stats().acked, 1u);
}

TEST(ReliableSession, RetransmitsThroughLoss) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 0);
    // Half the frames vanish in each direction; retries must recover.
    ReliableSession session(agent,
                            LossyChannel(0.0, 0.5, util::Rng(7)),
                            LossyChannel(0.0, 0.5, util::Rng(8)),
                            /*max_retries=*/20);
    int delivered = 0;
    for (int i = 0; i < 20; ++i)
        if (session.apply(0, {static_cast<int>(i % 4), 0, 0})) ++delivered;
    EXPECT_EQ(delivered, 20);
    EXPECT_GT(session.stats().attempts, 25u);  // retries happened
}

TEST(ReliableSession, SurvivesBitErrors) {
    // Plain version-1 frames: with telemetry on, frames carry a 16-byte
    // trace header, and at this BER the larger frames change the retry
    // budget the test was calibrated for.
    obs::set_enabled(false);
    surface::Array array = make_array();
    ArrayAgent agent(array, 0);
    // 0.5% BER corrupts most 20-byte frames occasionally; CRC catches
    // them and the session retries.
    ReliableSession session(agent,
                            LossyChannel(5e-3, 0.0, util::Rng(9)),
                            LossyChannel(5e-3, 0.0, util::Rng(10)),
                            /*max_retries=*/20);
    int delivered = 0;
    for (int i = 0; i < 20; ++i)
        if (session.apply(0, {1, 2, 3})) ++delivered;
    EXPECT_EQ(delivered, 20);
    // No corrupted configuration was ever applied: the array always holds
    // the last intended state.
    EXPECT_EQ(array.current_config(), (surface::Config{1, 2, 3}));
    obs::set_enabled(true);
}

TEST(ReliableSession, AgentAdoptsSenderContextAcrossWire) {
    obs::set_enabled(true);
    (void)obs::flush_spans();
    surface::Array array = make_array();
    ArrayAgent agent(array, 0);
    ReliableSession session(agent, perfect(), perfect());

    obs::TraceContext root_ctx;
    {
        obs::TraceSpan root("test.cycle");
        root_ctx = root.context();
        EXPECT_TRUE(session.apply(0, {1, 0, 0}));
    }
    ASSERT_TRUE(root_ctx.valid());

    // The agent's handling span belongs to the sender's trace — the
    // context crossed the simulated wire in the frame header — and is
    // flagged as an adopted (cross-wire) edge.
    bool agent_span_seen = false;
    for (const obs::SpanRecord& s : obs::flush_spans()) {
        EXPECT_EQ(s.trace_id, root_ctx.trace_id) << s.name;
        if (s.name == "control.agent.handle") {
            agent_span_seen = true;
            EXPECT_TRUE(s.adopted);
        }
    }
    EXPECT_TRUE(agent_span_seen);
}

TEST(ReliableSession, GivesUpOnDeadChannel) {
    surface::Array array = make_array();
    ArrayAgent agent(array, 0);
    ReliableSession session(agent,
                            LossyChannel(0.0, 0.999, util::Rng(11)),
                            perfect(), /*max_retries=*/3);
    EXPECT_FALSE(session.apply(0, {1, 1, 1}));
    EXPECT_EQ(session.stats().gave_up, 1u);
    EXPECT_EQ(session.stats().attempts, 4u);  // initial + 3 retries
}

}  // namespace
}  // namespace press::control
