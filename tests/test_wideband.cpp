// Wideband Wi-Fi 6E/7 regime (DESIGN.md §15): the 996/1960-tone
// numerology presets, RU-mask algebra and tile-span widening, the masked
// and fused-delta kernels' bit-identity contracts, the tile-bounded
// LinkCache/MultiLinkCache reads agreeing with the full-width calls on
// every covered double, the masked optimize_fast path's bit-identical
// results across thread counts, delta modes and kernel flavors, and the
// FFT plan cache reproducing the legacy fft()/ifft() bits.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/link_cache.hpp"
#include "core/multilink_cache.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "phy/ofdm.hpp"
#include "phy/rate.hpp"
#include "phy/ru.hpp"
#include "util/fft.hpp"
#include "util/fft_plan.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

namespace press {
namespace {

namespace kernels = util::kernels;
using control::ControlPlaneModel;
using control::GreedyCoordinateDescent;
using control::MaskedSnrObjective;
using control::SearchResult;
using kernels::Dispatch;
using kernels::IndexRange;

std::vector<IndexRange> to_index_ranges(const std::vector<phy::RuRange>& spans) {
    std::vector<IndexRange> out;
    out.reserve(spans.size());
    for (const phy::RuRange& s : spans) out.push_back({s.first, s.size()});
    return out;
}

surface::Config random_config(const surface::ConfigSpace& space,
                              util::Rng& rng) {
    const std::vector<int>& radices = space.radices();
    surface::Config c(space.num_elements());
    for (std::size_t e = 0; e < c.size(); ++e)
        c[e] = static_cast<int>(rng.uniform_int(0, radices[e] - 1));
    return c;
}

// ------------------------------------------------------------- presets

TEST(WidebandPresets, Wifi6e160Shape) {
    const phy::OfdmParams p = phy::OfdmParams::wifi6e_160();
    EXPECT_EQ(p.fft_size(), 2048u);
    EXPECT_EQ(p.num_used(), 996u);
    EXPECT_DOUBLE_EQ(p.sample_rate_hz(), 160e6);
    EXPECT_GT(p.carrier_hz(), 5.925e9);  // 6 GHz U-NII band
    EXPECT_LT(p.carrier_hz(), 7.125e9);
    // 802.11ax tone spacing: 160e6 / 2048 = 78.125 kHz.
    EXPECT_DOUBLE_EQ(p.subcarrier_spacing_hz(), 78125.0);
    // Offsets strictly ascending, DC never modulated, symmetric halves.
    for (std::size_t i = 1; i < p.num_used(); ++i)
        EXPECT_LT(p.used_offset(i - 1), p.used_offset(i));
    for (std::size_t i = 0; i < p.num_used(); ++i)
        EXPECT_NE(p.used_offset(i), 0);
    EXPECT_EQ(p.used_offset(0), -p.used_offset(p.num_used() - 1));
    // fft_bin maps negative offsets to the upper half of the grid.
    EXPECT_EQ(p.fft_bin(p.num_used() - 1),
              static_cast<std::size_t>(p.used_offset(p.num_used() - 1)));
    EXPECT_EQ(p.fft_bin(0), p.fft_size() -
                                static_cast<std::size_t>(-p.used_offset(0)));
}

TEST(WidebandPresets, Wifi7_320Shape) {
    const phy::OfdmParams p = phy::OfdmParams::wifi7_320();
    EXPECT_EQ(p.fft_size(), 4096u);
    EXPECT_EQ(p.num_used(), 1960u);
    EXPECT_DOUBLE_EQ(p.sample_rate_hz(), 320e6);
    EXPECT_GT(p.carrier_hz(), 5.925e9);
    EXPECT_LT(p.carrier_hz(), 7.125e9);
    // Same 78.125 kHz spacing as 160 MHz: twice the rate, twice the FFT.
    EXPECT_DOUBLE_EQ(p.subcarrier_spacing_hz(), 78125.0);
    EXPECT_EQ(p.used_offset(0), -p.used_offset(p.num_used() - 1));
    // Grid round trip at the wide size.
    util::CVec used(p.num_used());
    for (std::size_t i = 0; i < used.size(); ++i)
        used[i] = {static_cast<double>(i), -0.5 * static_cast<double>(i)};
    const util::CVec grid = p.place_on_grid(used);
    ASSERT_EQ(grid.size(), p.fft_size());
    EXPECT_EQ(p.gather_from_grid(grid), used);
}

// ----------------------------------------------------- RU-mask algebra

TEST(RuMask, UniformPartitionAndPuncture) {
    const phy::RuMask mask = phy::RuMask::uniform(996, 8);
    ASSERT_EQ(mask.num_ru(), 8u);
    EXPECT_EQ(mask.num_used(), 996u);
    // Contiguous partition, sizes differing by at most one (996 = 8*124
    // + 4: four 125-tone RUs then four 124-tone RUs).
    std::size_t cursor = 0, min_sz = 996, max_sz = 0;
    for (std::size_t r = 0; r < mask.num_ru(); ++r) {
        EXPECT_EQ(mask.ru(r).first, cursor);
        cursor = mask.ru(r).last;
        min_sz = std::min(min_sz, mask.ru(r).size());
        max_sz = std::max(max_sz, mask.ru(r).size());
        EXPECT_TRUE(mask.ru_active(r));
    }
    EXPECT_EQ(cursor, 996u);
    EXPECT_LE(max_sz - min_sz, 1u);
    EXPECT_TRUE(mask.is_full());

    const phy::RuMask punct = mask.punctured({5});
    EXPECT_FALSE(punct.is_full());
    EXPECT_FALSE(punct.ru_active(5));
    EXPECT_EQ(punct.num_active(), 996u - punct.ru(5).size());
    // Active indices are ascending and skip exactly RU 5.
    const std::vector<std::size_t>& idx = punct.active_indices();
    ASSERT_EQ(idx.size(), punct.num_active());
    for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
    for (const std::size_t k : idx)
        EXPECT_TRUE(k < punct.ru(5).first || k >= punct.ru(5).last);
}

TEST(RuMask, ComplementSelectsPuncturedTones) {
    const phy::RuMask punct = phy::RuMask::uniform(996, 8).punctured({2, 6});
    const phy::RuMask comp = punct.complement();
    EXPECT_EQ(comp.num_active() + punct.num_active(), 996u);
    // Every tone is active in exactly one of the two masks.
    std::vector<bool> seen(996, false);
    for (const std::size_t k : punct.active_indices()) seen[k] = true;
    for (const std::size_t k : comp.active_indices()) {
        EXPECT_FALSE(seen[k]);
        seen[k] = true;
    }
    for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(RuMask, TileSpansWidenAndSkipOnlyWholeTiles) {
    constexpr std::size_t kTile = core::LinkCache::kTileSubcarriers;
    // Full mask: one span covering everything.
    const auto full = phy::RuMask::full(996).tile_spans(kTile);
    ASSERT_EQ(full.size(), 1u);
    EXPECT_EQ(full[0], (phy::RuRange{0, 996}));

    // A single punctured 124-tone RU never frees a whole 256-tone tile:
    // the widened spans merge back to the full width.
    const auto one = phy::RuMask::uniform(996, 8).punctured({5})
                         .tile_spans(kTile);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], (phy::RuRange{0, 996}));

    // Puncturing the adjacent run {4,5,6} (a >=256-tone hole) does skip
    // tiles: spans are tile-aligned, cover every active tone, and cover
    // strictly less than the full width.
    const phy::RuMask punct =
        phy::RuMask::uniform(996, 8).punctured({4, 5, 6});
    const auto spans = punct.tile_spans(kTile);
    ASSERT_GT(spans.size(), 1u);
    std::size_t covered = 0, prev_end = 0;
    for (const phy::RuRange& s : spans) {
        EXPECT_GE(s.first, prev_end);  // ascending, non-overlapping
        EXPECT_EQ(s.first % kTile, 0u);
        EXPECT_TRUE(s.last % kTile == 0 || s.last == 996u);
        covered += s.size();
        prev_end = s.last;
    }
    EXPECT_LT(covered, 996u);
    for (const std::size_t k : punct.active_indices()) {
        bool inside = false;
        for (const phy::RuRange& s : spans)
            inside = inside || (k >= s.first && k < s.last);
        EXPECT_TRUE(inside) << "active tone " << k << " outside spans";
    }
}

// ------------------------------------------------------ masked kernels

TEST(MaskedKernels, BitIdenticalFlavorsAndDenseEquivalence) {
    const phy::RuMask mask = phy::RuMask::uniform(996, 8).punctured({2, 5});
    const std::vector<IndexRange> ranges =
        to_index_ranges(mask.active_ranges());
    const std::vector<std::size_t>& idx = mask.active_indices();
    const std::size_t n = mask.num_used(), m = idx.size();

    util::Rng rng(404);
    std::vector<double> re(n), im(n), nv(n);
    for (std::size_t k = 0; k < n; ++k) {
        re[k] = rng.uniform(-1.0, 1.0);
        im[k] = rng.uniform(-1.0, 1.0);
        nv[k] = rng.uniform(1e-6, 1e-2);
    }

    // masked_gather: dense compaction, flavors identical, equals a
    // hand-rolled gather.
    std::vector<double> gs_re(m), gs_im(m), gn_re(m), gn_im(m);
    kernels::masked_gather(Dispatch::kScalar, re.data(), im.data(),
                           idx.data(), m, gs_re.data(), gs_im.data());
    kernels::masked_gather(Dispatch::kNative, re.data(), im.data(),
                           idx.data(), m, gn_re.data(), gn_im.data());
    EXPECT_EQ(gs_re, gn_re);
    EXPECT_EQ(gs_im, gn_im);
    for (std::size_t i = 0; i < m; ++i) EXPECT_EQ(gs_re[i], re[idx[i]]);

    // Masked reductions == dense gather + unmasked reduction, and the
    // flavors agree bitwise (the blocked reduction runs over the dense
    // masked axis).
    std::vector<double> gnv(m);
    for (std::size_t i = 0; i < m; ++i) gnv[i] = nv[idx[i]];
    for (const Dispatch d : {Dispatch::kScalar, Dispatch::kNative}) {
        EXPECT_EQ(kernels::masked_snr_db_min(d, re.data(), im.data(),
                                             nv.data(), idx.data(), m, 50.0,
                                             -30.0),
                  kernels::snr_db_min(d, gs_re.data(), gs_im.data(),
                                      gnv.data(), m, 50.0, -30.0));
        EXPECT_EQ(kernels::masked_snr_db_mean(d, re.data(), im.data(),
                                              nv.data(), idx.data(), m,
                                              50.0, -30.0),
                  kernels::snr_db_mean(d, gs_re.data(), gs_im.data(),
                                       gnv.data(), m, 50.0, -30.0));
    }
    EXPECT_EQ(kernels::masked_snr_db_min(Dispatch::kScalar, re.data(),
                                         im.data(), nv.data(), idx.data(),
                                         m, 50.0, -30.0),
              kernels::masked_snr_db_min(Dispatch::kNative, re.data(),
                                         im.data(), nv.data(), idx.data(),
                                         m, 50.0, -30.0));

    // masked_ltf_mean_var == full-width ltf_mean_var + gather of the
    // outputs, both flavors.
    const std::size_t repeats = 4;
    std::vector<double> raw_re(repeats * n), raw_im(repeats * n);
    for (std::size_t k = 0; k < raw_re.size(); ++k) {
        raw_re[k] = rng.uniform(-1.0, 1.0);
        raw_im[k] = rng.uniform(-1.0, 1.0);
    }
    std::vector<double> fm_re(n), fm_im(n), fvar(n);
    kernels::ltf_mean_var(Dispatch::kScalar, raw_re.data(), raw_im.data(),
                          repeats, n, fm_re.data(), fm_im.data(),
                          fvar.data());
    for (const Dispatch d : {Dispatch::kScalar, Dispatch::kNative}) {
        std::vector<double> mm_re(m), mm_im(m), mvar(m);
        kernels::masked_ltf_mean_var(d, raw_re.data(), raw_im.data(),
                                     repeats, n, idx.data(), m, mm_re.data(),
                                     mm_im.data(), mvar.data());
        for (std::size_t i = 0; i < m; ++i) {
            EXPECT_EQ(mm_re[i], fm_re[idx[i]]);
            EXPECT_EQ(mm_im[i], fm_im[idx[i]]);
            EXPECT_EQ(mvar[i], fvar[idx[i]]);
        }
    }

    // masked_accumulate touches exactly the ranges, bit-identical to a
    // full accumulate on those positions.
    std::vector<double> row_re(n), row_im(n);
    for (std::size_t k = 0; k < n; ++k) {
        row_re[k] = rng.uniform(-1.0, 1.0);
        row_im[k] = rng.uniform(-1.0, 1.0);
    }
    for (const Dispatch d : {Dispatch::kScalar, Dispatch::kNative}) {
        std::vector<double> full_re = re, full_im = im;
        kernels::accumulate(d, row_re.data(), row_im.data(), full_re.data(),
                            full_im.data(), n);
        std::vector<double> msk_re = re, msk_im = im;
        kernels::masked_accumulate(d, row_re.data(), row_im.data(),
                                   msk_re.data(), msk_im.data(),
                                   ranges.data(), ranges.size());
        std::vector<bool> in_range(n, false);
        for (const IndexRange& r : ranges)
            for (std::size_t k = r.offset; k < r.offset + r.len; ++k)
                in_range[k] = true;
        for (std::size_t k = 0; k < n; ++k) {
            EXPECT_EQ(msk_re[k], in_range[k] ? full_re[k] : re[k]);
            EXPECT_EQ(msk_im[k], in_range[k] ? full_im[k] : im[k]);
        }
    }
}

TEST(MaskedKernels, FusedCopyAccumulateMatchesTwoStep) {
    const std::size_t n = 996;
    util::Rng rng(77);
    std::vector<double> src_re(n), src_im(n), row_re(n), row_im(n);
    for (std::size_t k = 0; k < n; ++k) {
        src_re[k] = rng.uniform(-1.0, 1.0);
        src_im[k] = rng.uniform(-1.0, 1.0);
        row_re[k] = rng.uniform(-1.0, 1.0);
        row_im[k] = rng.uniform(-1.0, 1.0);
    }
    const phy::RuMask mask =
        phy::RuMask::uniform(n, 8).punctured({4, 5, 6});
    const std::vector<IndexRange> spans =
        to_index_ranges(mask.tile_spans(core::LinkCache::kTileSubcarriers));

    for (const Dispatch d : {Dispatch::kScalar, Dispatch::kNative}) {
        // Full width: dst = src + row in one pass == copy then accumulate.
        std::vector<double> two_re(n), two_im(n);
        kernels::copy(d, src_re.data(), src_im.data(), two_re.data(),
                      two_im.data(), n);
        kernels::accumulate(d, row_re.data(), row_im.data(), two_re.data(),
                            two_im.data(), n);
        std::vector<double> fused_re(n), fused_im(n);
        kernels::copy_accumulate(d, src_re.data(), src_im.data(),
                                 row_re.data(), row_im.data(),
                                 fused_re.data(), fused_im.data(), n);
        EXPECT_EQ(fused_re, two_re);
        EXPECT_EQ(fused_im, two_im);

        // Tile-bounded: covered doubles match the full fused pass,
        // everything outside is left exactly as initialized.
        std::vector<double> m_re(n, -9.0), m_im(n, -9.0);
        kernels::masked_copy_accumulate(d, src_re.data(), src_im.data(),
                                        row_re.data(), row_im.data(),
                                        m_re.data(), m_im.data(),
                                        spans.data(), spans.size());
        std::vector<bool> in_span(n, false);
        for (const IndexRange& r : spans)
            for (std::size_t k = r.offset; k < r.offset + r.len; ++k)
                in_span[k] = true;
        for (std::size_t k = 0; k < n; ++k) {
            EXPECT_EQ(m_re[k], in_span[k] ? fused_re[k] : -9.0);
            EXPECT_EQ(m_im[k], in_span[k] ? fused_im[k] : -9.0);
        }
    }
    // Flavors bit-identical (element-wise kernels, by construction —
    // asserted anyway because the delta path's equality proof rests on it).
    std::vector<double> s_re(n), s_im(n), v_re(n), v_im(n);
    kernels::copy_accumulate(Dispatch::kScalar, src_re.data(), src_im.data(),
                             row_re.data(), row_im.data(), s_re.data(),
                             s_im.data(), n);
    kernels::copy_accumulate(Dispatch::kNative, src_re.data(), src_im.data(),
                             row_re.data(), row_im.data(), v_re.data(),
                             v_im.data(), n);
    EXPECT_EQ(s_re, v_re);
    EXPECT_EQ(s_im, v_im);
}

// ------------------------------------------------- tile-bounded cache

TEST(WidebandCache, ElementRowDeltaMatchesTwoStepBitExactly) {
    core::WidebandScenario scenario = core::make_wideband_scenario(31);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    const std::size_t num_sc = medium.ofdm().num_used();
    const std::vector<IndexRange> spans = to_index_ranges(
        scenario.mask.tile_spans(core::LinkCache::kTileSubcarriers));

    util::Rng rng(9);
    kernels::SplitVec base, two, fused;
    for (int trial = 0; trial < 3; ++trial) {
        const surface::Config config = random_config(space, rng);
        const std::size_t element = trial * 5 % space.num_elements();
        const int state =
            static_cast<int>(rng.uniform_int(0, space.radices()[element] - 1));
        cache.response_base_into(medium, scenario.link_id, link,
                                 scenario.array_id, config, element, base);
        ASSERT_EQ(base.size(), num_sc);

        // Full width: fused single pass == copy + accumulate_element_row.
        two.resize(num_sc);
        kernels::copy(kernels::active(), base.re.data(), base.im.data(),
                      two.re.data(), two.im.data(), num_sc);
        cache.accumulate_element_row(scenario.link_id, scenario.array_id,
                                     element, state, two);
        fused.resize(num_sc);
        cache.element_row_delta(scenario.link_id, scenario.array_id, element,
                                state, base, fused);
        EXPECT_EQ(fused.re, two.re);
        EXPECT_EQ(fused.im, two.im);

        // Tile-bounded: the fused ranges call matches the full-width
        // result on every covered double.
        kernels::SplitVec ranged;
        ranged.assign_zero(num_sc);
        cache.element_row_delta_ranges(scenario.link_id, scenario.array_id,
                                       element, state, spans.data(),
                                       spans.size(), base, ranged);
        for (const IndexRange& r : spans)
            for (std::size_t k = r.offset; k < r.offset + r.len; ++k) {
                EXPECT_EQ(ranged.re[k], fused.re[k]);
                EXPECT_EQ(ranged.im[k], fused.im[k]);
            }
    }
}

TEST(WidebandCache, RangedReadsMatchFullWidthOnSpans) {
    core::WidebandScenario scenario = core::make_wideband_scenario(32);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    const std::size_t num_sc = medium.ofdm().num_used();
    const std::vector<IndexRange> spans = to_index_ranges(
        scenario.mask.tile_spans(core::LinkCache::kTileSubcarriers));

    util::Rng rng(10);
    const surface::Config config = random_config(space, rng);
    kernels::SplitVec full, ranged;
    cache.response_into(medium, scenario.link_id, link, scenario.array_id,
                        config, full);
    ranged.assign_zero(num_sc);
    cache.response_ranges_into(medium, scenario.link_id, link,
                               scenario.array_id, config, spans.data(),
                               spans.size(), ranged);
    for (const IndexRange& r : spans)
        for (std::size_t k = r.offset; k < r.offset + r.len; ++k) {
            EXPECT_EQ(ranged.re[k], full.re[k]);
            EXPECT_EQ(ranged.im[k], full.im[k]);
        }
}

TEST(WidebandCache, GroupResponseRangesMatchesFullOnSpans) {
    core::MultiLinkParams params;
    params.num_aps = 2;
    params.clients_per_ap = 2;
    core::MultiLinkScenario scenario = core::make_multi_link_scenario(7, params);
    core::System& system = scenario.system;
    system.warm_multilink();
    const core::MultiLinkCache& cache = system.multilink_cache();
    const surface::ConfigSpace space =
        system.medium().array(scenario.array_id).config_space();
    // 20 MHz numerology: one 52-tone span exercises the per-member
    // segment walk without needing a wide scene.
    const std::vector<IndexRange> spans = {{0, 16}, {32, 20}};

    util::Rng rng(11);
    const surface::Config config = random_config(space, rng);
    for (std::size_t group = 0; group < cache.num_groups(); ++group) {
        kernels::SplitVec full, ranged;
        cache.group_response_into(system.medium(), group, scenario.array_id,
                                  config, full);
        ranged.assign_zero(full.size());
        cache.group_response_ranges_into(system.medium(), group,
                                         scenario.array_id, config,
                                         spans.data(), spans.size(), ranged);
        const std::size_t stride = cache.link_stride();
        for (std::size_t slot = 0; slot * stride < full.size(); ++slot)
            for (const IndexRange& r : spans)
                for (std::size_t k = 0; k < r.len; ++k) {
                    const std::size_t at = slot * stride + r.offset + k;
                    EXPECT_EQ(ranged.re[at], full.re[at]);
                    EXPECT_EQ(ranged.im[at], full.im[at]);
                }
    }
}

// ------------------------------------------------- masked optimization

// The tentpole reproducibility property: a masked greedy search over the
// 996-tone scene lands on the same configuration, bit for bit, for any
// thread count, either kernel flavor, and with the tile-bounded delta
// path on or off (PRESS_DELTA) — the fused base-plus-row delta and the
// recompute path add the swept row last on every covered tone.
TEST(WidebandSearch, MaskedOptimizeBitIdenticalAcrossThreadsDeltaKernels) {
    const auto run = [](std::size_t threads, const char* delta,
                        Dispatch dispatch) {
        const Dispatch before = kernels::active();
        kernels::set_dispatch(dispatch);
        if (delta) ::setenv("PRESS_DELTA", delta, 1);
        core::WidebandScenario scenario = core::make_wideband_scenario(33);
        util::Rng rng(21);
        const auto outcome = scenario.system.optimize_fast(
            scenario.array_id,
            MaskedSnrObjective(scenario.mask,
                               control::FusedSpec::Kind::kMinSnr),
            GreedyCoordinateDescent(), ControlPlaneModel::fast(), 0.05,
            rng, threads);
        if (delta) ::unsetenv("PRESS_DELTA");
        kernels::set_dispatch(before);
        return outcome.search;
    };
    const SearchResult base = run(1, nullptr, Dispatch::kScalar);
    EXPECT_GT(base.evaluations, 0u);
    for (const std::size_t threads : {3u, 8u}) {
        const SearchResult t = run(threads, nullptr, Dispatch::kScalar);
        EXPECT_EQ(base.best_config, t.best_config);
        EXPECT_EQ(base.best_score, t.best_score);
        EXPECT_EQ(base.trajectory, t.trajectory);
    }
    const SearchResult native = run(1, nullptr, Dispatch::kNative);
    EXPECT_EQ(base.best_config, native.best_config);
    EXPECT_EQ(base.best_score, native.best_score);
    for (const char* delta : {"0", "1"}) {
        const SearchResult d = run(3, delta, Dispatch::kScalar);
        EXPECT_EQ(base.best_config, d.best_config);
        EXPECT_EQ(base.best_score, d.best_score);
        EXPECT_EQ(base.trajectory, d.trajectory);
    }
}

// ----------------------------------------------------------- FFT plans

TEST(FftPlan, BitIdenticalToLegacyTransforms) {
    // Power-of-two sizes run planned radix-2; the rest run planned
    // Bluestein (including 996 and the N210-ish 100). Every output must
    // reproduce util::fft()/ifft() bit for bit.
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}, std::size_t{64},
                                std::size_t{100}, std::size_t{128},
                                std::size_t{996}, std::size_t{2048}}) {
        const util::FftPlan plan(n);
        EXPECT_EQ(plan.size(), n);
        EXPECT_EQ(plan.uses_bluestein(), n >= 2 && (n & (n - 1)) != 0);
        util::Rng rng(1000 + n);
        util::CVec x(n);
        for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        const util::CVec want_fwd = util::fft(x);
        const util::CVec want_inv = util::ifft(x);
        util::FftScratch scratch;
        util::CVec fwd, inv;
        plan.forward(x, fwd, scratch);
        plan.inverse(x, inv, scratch);
        ASSERT_EQ(fwd.size(), n);
        for (std::size_t k = 0; k < n; ++k) {
            EXPECT_EQ(fwd[k].real(), want_fwd[k].real()) << "n=" << n;
            EXPECT_EQ(fwd[k].imag(), want_fwd[k].imag()) << "n=" << n;
            EXPECT_EQ(inv[k].real(), want_inv[k].real()) << "n=" << n;
            EXPECT_EQ(inv[k].imag(), want_inv[k].imag()) << "n=" << n;
        }
        // Scratch reuse across sizes is part of the contract (buffers
        // grow, never shrink) — run a second transform into the same
        // scratch and expect the same bits.
        util::CVec again;
        plan.forward(x, again, scratch);
        EXPECT_EQ(again, fwd);
    }
}

TEST(FftPlan, ProcessCacheReturnsSamePlan) {
    const util::FftPlan& a = util::plan_for(2048);
    const util::FftPlan& b = util::plan_for(2048);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.size(), 2048u);
    // Legacy entry points route through the cache: fft() after plan_for
    // must still match a direct plan execution (bit-identity covered
    // above; this guards the routing).
    util::Rng rng(5);
    util::CVec x(2048);
    for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    util::FftScratch scratch;
    util::CVec planned;
    a.forward(x, planned, scratch);
    EXPECT_EQ(util::fft(x), planned);
}

// ------------------------------------------------------- effective SNR

TEST(EffectiveSnr, FusedKernelFlavorsAgreeAndTrackReference) {
    util::Rng rng(8);
    std::vector<double> snr_db(996);
    for (auto& v : snr_db) v = rng.uniform(-10.0, 40.0);
    const double scalar = kernels::effective_snr_db(
        Dispatch::kScalar, snr_db.data(), snr_db.size());
    const double native = kernels::effective_snr_db(
        Dispatch::kNative, snr_db.data(), snr_db.size());
    EXPECT_EQ(scalar, native);  // blocked reduction, both flavors
    EXPECT_EQ(phy::effective_snr_db(snr_db), scalar);
    // The serial reference associates differently; agreement is to
    // rounding, not bits.
    EXPECT_NEAR(phy::effective_snr_db_reference(snr_db), scalar, 1e-9);
}

}  // namespace
}  // namespace press
