// Cross-cutting property tests: invariants that must hold across formats,
// seeds and layers (superposition, reciprocity, inverse functions,
// distribution identities), mostly as parameterized sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scenarios.hpp"
#include "em/channel.hpp"
#include "em/environment.hpp"
#include "phy/frame.hpp"
#include "phy/preamble.hpp"
#include "phy/rate.hpp"
#include "sdr/medium.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace press {
namespace {

// ------------------------------------------------ PHY across formats

class AcrossOfdmFormats : public ::testing::TestWithParam<int> {
protected:
    phy::OfdmParams params() const {
        return GetParam() == 0 ? phy::OfdmParams::wifi20()
                               : phy::OfdmParams::n210_wideband();
    }
};

TEST_P(AcrossOfdmFormats, FrameRoundtripsOnPerfectChannel) {
    const phy::OfdmParams p = params();
    phy::FrameSpec spec;
    spec.num_ltf = 2;
    spec.num_data = 3;
    spec.modulation = phy::Modulation::kQam16;
    util::Rng rng(GetParam() + 40);
    const phy::TxFrame tx = phy::build_frame(p, spec, rng);
    const phy::RxFrame rx = phy::parse_frame(p, spec, tx.samples);
    EXPECT_EQ(rx.payload_bits, tx.payload_bits);
}

TEST_P(AcrossOfdmFormats, LtfPilotsMatchUsedCount) {
    const phy::OfdmParams p = params();
    EXPECT_EQ(phy::ltf_pilots(p).size(), p.num_used());
    EXPECT_EQ(phy::ltf_time_symbol(p).size(),
              p.cp_length() + p.fft_size());
}

TEST_P(AcrossOfdmFormats, PlaceGatherIsInverse) {
    const phy::OfdmParams p = params();
    util::Rng rng(GetParam() + 50);
    util::CVec used(p.num_used());
    for (auto& v : used) v = rng.complex_gaussian(1.0);
    EXPECT_LT(util::max_abs_diff(
                  p.gather_from_grid(p.place_on_grid(used)), used),
              1e-15);
}

TEST_P(AcrossOfdmFormats, SubcarrierFrequenciesBracketCarrier) {
    const phy::OfdmParams p = params();
    const auto freqs = p.used_frequencies_hz();
    EXPECT_LT(freqs.front(), p.carrier_hz());
    EXPECT_GT(freqs.back(), p.carrier_hz());
    // Symmetric layout around the carrier.
    EXPECT_NEAR(freqs.front() + freqs.back(), 2.0 * p.carrier_hz(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Formats, AcrossOfdmFormats, ::testing::Values(0, 1));

// ---------------------------------------------------- channel algebra

TEST(ChannelProperties, SuperpositionOfPathSets) {
    util::Rng rng(60);
    std::vector<em::Path> a;
    std::vector<em::Path> b;
    for (int i = 0; i < 4; ++i) {
        em::Path p;
        p.gain = rng.complex_gaussian(1.0);
        p.delay_s = rng.uniform(0.0, 300e-9);
        (i % 2 ? a : b).push_back(p);
    }
    std::vector<em::Path> both = a;
    both.insert(both.end(), b.begin(), b.end());
    std::vector<double> freqs;
    for (int k = 0; k < 8; ++k) freqs.push_back(2.4e9 + k * 2e6);
    const util::CVec ha = em::frequency_response(a, freqs);
    const util::CVec hb = em::frequency_response(b, freqs);
    const util::CVec hab = em::frequency_response(both, freqs);
    EXPECT_LT(util::max_abs_diff(hab, util::add(ha, hb)), 1e-12);
}

TEST(ChannelProperties, GainScalingScalesResponse) {
    em::Path p;
    p.gain = {0.5, 0.25};
    p.delay_s = 55e-9;
    em::Path doubled = p;
    doubled.gain *= 2.0;
    const std::vector<double> freqs = {2.4e9, 2.41e9};
    const util::CVec h1 = em::frequency_response({p}, freqs);
    const util::CVec h2 = em::frequency_response({doubled}, freqs);
    for (std::size_t k = 0; k < freqs.size(); ++k)
        EXPECT_NEAR(std::abs(h2[k] - 2.0 * h1[k]), 0.0, 1e-15);
}

TEST(ChannelProperties, TwoHopReciprocity) {
    // Swapping TX and RX leaves the element path's magnitude and delay
    // unchanged (antennas equal, reciprocal medium).
    em::Environment env;
    em::RadiatingEndpoint a{{0, 0, 0}, em::Antenna::omni(2.0), {}};
    em::RadiatingEndpoint b{{5, 1, 0}, em::Antenna::omni(2.0), {}};
    const em::Vec3 via{2, 3, 1};
    const em::Antenna elem = em::Antenna::omni(12.0);
    const auto fwd = env.two_hop(a, b, via, elem, {0.8, 0.1}, 1e-10,
                                 2.4e9, em::PathKind::kPressElement);
    const auto rev = env.two_hop(b, a, via, elem, {0.8, 0.1}, 1e-10,
                                 2.4e9, em::PathKind::kPressElement);
    ASSERT_TRUE(fwd && rev);
    EXPECT_NEAR(std::abs(fwd->gain), std::abs(rev->gain), 1e-15);
    EXPECT_NEAR(fwd->delay_s, rev->delay_s, 1e-18);
}

class SeededScenarioReciprocity : public ::testing::TestWithParam<int> {};

TEST_P(SeededScenarioReciprocity, TrueSnrSymmetricUnderSwap) {
    core::LinkScenario scenario =
        core::make_link_scenario(400 + GetParam(), false);
    const auto fwd = scenario.system.true_snr_db(scenario.link_id);
    sdr::Link& link = scenario.system.link(scenario.link_id);
    std::swap(link.tx, link.rx);
    const auto rev = scenario.system.true_snr_db(scenario.link_id);
    for (std::size_t k = 0; k < fwd.size(); ++k)
        EXPECT_NEAR(fwd[k], rev[k], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededScenarioReciprocity,
                         ::testing::Range(0, 4));

// ------------------------------------------------------ config spaces

class ConfigEnumeration
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(ConfigEnumeration, EnumerateMatchesIndexing) {
    const surface::ConfigSpace space(GetParam());
    const auto all = space.enumerate();
    ASSERT_EQ(all.size(), space.size());
    for (std::uint64_t i = 0; i < space.size(); ++i)
        EXPECT_EQ(all[i], space.at(i));
}

INSTANTIATE_TEST_SUITE_P(
    Radices, ConfigEnumeration,
    ::testing::Values(std::vector<int>{4, 4, 4}, std::vector<int>{2, 2, 2, 2},
                      std::vector<int>{5, 3}, std::vector<int>{1, 1, 7}));

// ----------------------------------------------------------- rate/stats

class EffectiveSnrBounds : public ::testing::TestWithParam<int> {};

TEST_P(EffectiveSnrBounds, BetweenMinAndMax) {
    util::Rng rng(70 + GetParam());
    std::vector<double> snr(52);
    for (double& s : snr) s = rng.uniform(0.0, 45.0);
    const double eff = phy::effective_snr_db(snr);
    EXPECT_GE(eff, util::min_value(snr) - 1e-9);
    EXPECT_LE(eff, util::max_value(snr) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EffectiveSnrBounds, ::testing::Range(0, 6));

class QuantileCdfInverse : public ::testing::TestWithParam<int> {};

TEST_P(QuantileCdfInverse, CdfOfQuantileCoversProbability) {
    util::Rng rng(80 + GetParam());
    std::vector<double> xs(257);
    for (double& x : xs) x = rng.gaussian(0.0, 3.0);
    const util::EmpiricalDistribution d(xs);
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        const double x = d.quantile(q);
        // CDF at the q-quantile is within one sample weight of q.
        EXPECT_NEAR(d.cdf(x), q, 1.5 / static_cast<double>(xs.size()) + 0.01);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileCdfInverse, ::testing::Range(0, 4));

// -------------------------------------------------- medium invariants

TEST(MediumProperties, ArrayOffApproachesBareEnvironment) {
    core::LinkScenario scenario = core::make_link_scenario(401, false);
    // All elements absorptive: the response must sit within the absorber
    // leakage of the environment-only response.
    scenario.system.apply(scenario.array_id, {3, 3, 3});
    const util::CVec with_array = scenario.system.medium().frequency_response(
        scenario.system.link(scenario.link_id));
    core::StudyParams p;
    p.num_elements = 3;
    core::LinkScenario bare = core::make_link_scenario(401, false, p);
    // Rebuild with an empty-effect array by keeping it terminated too; the
    // leakage bound: |H_on - H_off| <= sum of element paths at 1% leakage.
    bare.system.apply(bare.array_id, {3, 3, 3});
    const util::CVec same = bare.system.medium().frequency_response(
        bare.system.link(bare.link_id));
    EXPECT_LT(util::max_abs_diff(with_array, same), 1e-12);
}

TEST(MediumProperties, TerminatedElementsBarelyPerturb) {
    core::LinkScenario scenario = core::make_link_scenario(402, false);
    scenario.system.apply(scenario.array_id, {0, 0, 0});
    const auto on = scenario.system.true_snr_db(scenario.link_id);
    scenario.system.apply(scenario.array_id, {3, 3, 3});
    const auto off = scenario.system.true_snr_db(scenario.link_id);
    // Mean SNR is similar (absorbers kill the element paths) even though
    // individual null subcarriers may differ hugely.
    EXPECT_NEAR(util::mean(on), util::mean(off), 4.0);
}

TEST(MediumProperties, SnrMonotoneInTxPower) {
    core::LinkScenario scenario = core::make_link_scenario(403, false);
    sdr::Link& link = scenario.system.link(scenario.link_id);
    std::vector<double> means;
    for (double p : {-10.0, 0.0, 10.0}) {
        link.profile.tx_power_dbm = p;
        means.push_back(
            util::mean(scenario.system.true_snr_db(scenario.link_id)));
    }
    EXPECT_NEAR(means[1] - means[0], 10.0, 1e-9);
    EXPECT_NEAR(means[2] - means[1], 10.0, 1e-9);
}

}  // namespace
}  // namespace press
