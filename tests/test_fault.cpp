// Tests for the fault subsystem: fault injection (stuck/dead/drift/flaky),
// the frozen search-space projection, health-probe detection and its
// false-positive rate under measurement noise, reliable-transport backoff
// timing, and the controller's degradation behaviour (failed applies,
// revert-to-last-known-good, lossy channels shrinking trial budgets).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "control/controller.hpp"
#include "control/transport.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "press/element.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::fault {
namespace {

surface::Array make_array(int count = 4) {
    surface::Array array;
    for (int i = 0; i < count; ++i) {
        array.add_element(surface::Element::sp4t_prototype(
            {1.0 + i, 0, 1}, em::Antenna::omni(12.0), 2.462e9));
    }
    return array;
}

// ------------------------------------------------------------ FaultModel

TEST(FaultModel, StuckElementPinsItsState) {
    surface::Array array = make_array();
    FaultModel model(util::Rng(1));
    model.add({1, FaultType::kStuckAt, 2, 0.0, 0.0});
    model.apply(array, {0, 0, 0, 0});
    EXPECT_EQ(array.current_config(), (surface::Config{0, 2, 0, 0}));
    model.apply(array, {3, 3, 3, 3});
    EXPECT_EQ(array.current_config(), (surface::Config{3, 2, 3, 3}));
}

TEST(FaultModel, DeadElementLosesEveryLoad) {
    surface::Array array = make_array();
    FaultModel model;
    model.add({2, FaultType::kDead, 0, 0.0, 0.0});
    model.install(array);
    const surface::Element& dead = array.element(2);
    for (int s = 0; s < dead.num_states(); ++s)
        EXPECT_TRUE(dead.load(s).is_off()) << "state " << s;
    // A healthy neighbour keeps its reflective stubs.
    EXPECT_FALSE(array.element(0).load(0).is_off());
}

TEST(FaultModel, PhaseDriftRotatesReflectiveLoads) {
    surface::Array array = make_array();
    const double drift = util::kPi / 6.0;
    const auto before = array.element(1).load(0).reflection;
    FaultModel model;
    model.add({1, FaultType::kPhaseDrift, 0, drift, 0.0});
    model.install(array);
    const auto after = array.element(1).load(0).reflection;
    EXPECT_NEAR(std::arg(after / before), drift, 1e-12);
    EXPECT_NEAR(std::abs(after), std::abs(before), 1e-12);
    // The absorptive throw has no phase to age.
    EXPECT_TRUE(array.element(1).load(3).is_off());
}

TEST(FaultModel, FlakyElementIgnoresCommandsAtItsRate) {
    surface::Array array = make_array();
    FaultModel always(util::Rng(2));
    always.add({0, FaultType::kFlaky, 0, 0.0, 1.0});
    always.apply(array, {1, 1, 1, 1});
    EXPECT_EQ(array.current_config()[0], 0);  // command ignored

    FaultModel never(util::Rng(3));
    never.add({0, FaultType::kFlaky, 0, 0.0, 0.0});
    never.apply(array, {2, 2, 2, 2});
    EXPECT_EQ(array.current_config()[0], 2);  // command lands
}

TEST(FaultModel, DistortIsDeterministicGivenSeed) {
    FaultModel a(util::Rng(7));
    FaultModel b(util::Rng(7));
    for (FaultModel* m : {&a, &b})
        m->add({0, FaultType::kFlaky, 0, 0.0, 0.5});
    const surface::Config req = {1, 1}, cur = {0, 0};
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.distort(req, cur), b.distort(req, cur));
}

TEST(FaultModel, SampleDrawsDistinctElementsAtFraction) {
    const surface::ConfigSpace space({4, 4, 4, 4, 4, 4, 4, 4});
    util::Rng rng(11);
    const FaultModel model = FaultModel::sample(space, 0.5, rng);
    EXPECT_EQ(model.num_faulty(), 4u);
    for (const Fault& f : model.faults()) EXPECT_LT(f.element, 8u);
    // Distinct elements.
    for (std::size_t i = 0; i < model.faults().size(); ++i)
        for (std::size_t j = i + 1; j < model.faults().size(); ++j)
            EXPECT_NE(model.faults()[i].element, model.faults()[j].element);
    EXPECT_TRUE(FaultModel::sample(space, 0.0, rng).empty());
}

TEST(FaultModel, LaterFaultOnSameElementWins) {
    FaultModel model;
    model.add({0, FaultType::kStuckAt, 1, 0.0, 0.0});
    model.add({0, FaultType::kStuckAt, 3, 0.0, 0.0});
    EXPECT_EQ(model.num_faulty(), 1u);
    EXPECT_EQ(model.faults()[0].stuck_state, 3);
}

// ---------------------------------------------------- FrozenProjection

TEST(FrozenProjection, LiftAndProjectRoundtrip) {
    const surface::ConfigSpace space({4, 3, 4, 2});
    const surface::FrozenProjection proj(
        space, {false, true, false, true}, {0, 2, 0, 1});
    EXPECT_EQ(proj.num_frozen(), 2u);
    EXPECT_TRUE(proj.is_frozen(1));
    EXPECT_FALSE(proj.is_frozen(2));
    EXPECT_EQ(proj.reduced().radices(), (std::vector<int>{4, 4}));
    EXPECT_EQ(proj.lift({3, 1}), (surface::Config{3, 2, 1, 1}));
    EXPECT_EQ(proj.project({3, 2, 1, 1}), (surface::Config{3, 1}));
}

TEST(FrozenProjection, RejectsFreezingEverything) {
    const surface::ConfigSpace space({4, 4});
    EXPECT_THROW(
        surface::FrozenProjection(space, {true, true}, {0, 0}),
        util::ContractViolation);
}

// -------------------------------------------------------- HealthMonitor

/// A synthetic substrate: element e in state s contributes gain_db[e][s]
/// to the mean SNR; a Gaussian noise term models estimator noise.
struct SyntheticChannel {
    std::vector<std::vector<double>> gain_db;
    surface::Config current;
    double noise_sigma_db = 0.0;
    util::Rng noise{99};

    control::ApplyFn apply() {
        return [this](const surface::Config& c) {
            current = c;
            return true;
        };
    }
    control::MeasureFn measure() {
        return [this]() {
            double snr = 30.0;
            for (std::size_t e = 0; e < current.size(); ++e)
                snr += gain_db[e][static_cast<std::size_t>(current[e])];
            control::Observation obs;
            obs.link_snr_db = {{snr + noise.gaussian(0.0, noise_sigma_db)}};
            return obs;
        };
    }
};

TEST(HealthMonitor, FlagsDeadAndSparesHealthy) {
    // Elements 0 and 2 respond 2 dB to state changes; element 1 is dead
    // flat.
    SyntheticChannel ch;
    ch.gain_db = {{0, 2, 2, 2}, {0, 0, 0, 0}, {0, 2, 2, 2}};
    ch.current = {0, 0, 0};
    HealthMonitor monitor(ch.apply(), ch.measure(), 1, 1);
    const surface::ConfigSpace space({4, 4, 4});
    const HealthReport report = monitor.probe(
        space, {0, 0, 0}, control::ControlPlaneModel::fast());
    ASSERT_EQ(report.suspect.size(), 3u);
    EXPECT_FALSE(report.suspect[0]);
    EXPECT_TRUE(report.suspect[1]);
    EXPECT_FALSE(report.suspect[2]);
    EXPECT_EQ(report.suspect_elements(), (std::vector<std::size_t>{1}));
    EXPECT_NEAR(report.response_db[0], 2.0, 1e-9);
    EXPECT_NEAR(report.response_db[1], 0.0, 1e-9);
    // Probes cost wall-clock: 2 sweeps x (1 baseline + 3 elements x 3
    // states).
    EXPECT_EQ(report.probes, 20u);
    EXPECT_GT(report.elapsed_s, 0.0);
    // The sweep leaves the baseline restored.
    EXPECT_EQ(ch.current, (surface::Config{0, 0, 0}));
}

TEST(HealthMonitor, FalsePositiveRateUnderNoise) {
    // All-healthy wall, 2 dB of response, 0.3 dB estimator noise: across
    // 10 seeded probe runs of 8 elements none may be flagged.
    std::size_t false_positives = 0;
    for (int trial = 0; trial < 10; ++trial) {
        SyntheticChannel ch;
        ch.gain_db.assign(8, {0, 2, 2, 2});
        ch.current.assign(8, 0);
        ch.noise_sigma_db = 0.3;
        ch.noise = util::Rng(static_cast<std::uint64_t>(trial) + 1);
        HealthMonitor monitor(ch.apply(), ch.measure(), 1, 1);
        const surface::ConfigSpace space({4, 4, 4, 4, 4, 4, 4, 4});
        const HealthReport report = monitor.probe(
            space, surface::Config(8, 0),
            control::ControlPlaneModel::fast());
        false_positives += report.num_suspect();
    }
    EXPECT_EQ(false_positives, 0u);
}

TEST(HealthMonitor, CatchesStuckElementThroughNoise) {
    SyntheticChannel ch;
    ch.gain_db = {{0, 2, 2, 2}, {0, 0, 0, 0}, {0, 2, 2, 2}};
    ch.current = {0, 0, 0};
    ch.noise_sigma_db = 0.3;
    HealthMonitor monitor(ch.apply(), ch.measure(), 1, 1);
    const surface::ConfigSpace space({4, 4, 4});
    const HealthReport report = monitor.probe(
        space, {0, 0, 0}, control::ControlPlaneModel::fast());
    EXPECT_TRUE(report.suspect[1]);
    EXPECT_FALSE(report.suspect[0]);
    EXPECT_FALSE(report.suspect[2]);
}

TEST(HealthMonitor, DumpsFlightRecorderOnDegradation) {
    obs::set_enabled(true);
    obs::flight_arm(64);
    std::remove("flight_unit_probe.json");

    SyntheticChannel ch;
    ch.gain_db = {{0, 2, 2, 2}, {0, 0, 0, 0}, {0, 2, 2, 2}};
    ch.current = {0, 0, 0};
    HealthMonitor monitor(ch.apply(), ch.measure(), 1, 1);
    const surface::ConfigSpace space({4, 4, 4});
    ProbeOptions options;
    options.flight_dump_name = "unit_probe";
    const HealthReport report = monitor.probe(
        space, {0, 0, 0}, control::ControlPlaneModel::fast(), options);
    ASSERT_GT(report.num_suspect(), 0u);

    // The sweep flagged a suspect, so the recorder window was written.
    std::ifstream in("flight_unit_probe.json");
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const obs::Json dump = obs::Json::parse(buffer.str());
    EXPECT_EQ(obs::validate_flight(dump), "");
    EXPECT_GE(dump.at("spans").as_array().size(), 1u);
    in.close();
    std::remove("flight_unit_probe.json");
    obs::flight_disarm();
    (void)obs::flush_spans();
}

// -------------------------------------------------------- backoff timing

TEST(Backoff, NominalWaitsGrowGeometricallyAndCap) {
    control::BackoffPolicy policy;
    policy.base_s = 2e-3;
    policy.factor = 2.0;
    policy.max_s = 10e-3;
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(1), 2e-3);
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(2), 4e-3);
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(3), 8e-3);
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(4), 10e-3);  // capped
    EXPECT_DOUBLE_EQ(policy.nominal_wait_s(9), 10e-3);
}

TEST(ReliableSession, PricesSuccessfulApplyOnTheClock) {
    // Plain version-1 frames for exact pricing arithmetic: with telemetry
    // on the session stamps a 16-byte trace header on every frame (see
    // TracedFramesChargeHeaderAirtime below).
    obs::set_enabled(false);
    surface::Array array = make_array(3);
    control::ArrayAgent agent(array, 0);
    control::ReliableSession session(
        agent, control::LossyChannel(0.0, 0.0, util::Rng(1)),
        control::LossyChannel(0.0, 0.0, util::Rng(2)));
    const control::ControlPlaneModel model =
        control::ControlPlaneModel::fast();
    control::SimClock clock;
    session.set_timing(&model, &clock);

    ASSERT_TRUE(session.apply(0, {1, 2, 3}));
    // One frame down, one ack up, one switch settle; no backoff.
    control::SetConfig msg;
    msg.array_id = 0;
    msg.config = {1, 2, 3};
    control::SetConfigAck ack;
    ack.array_id = 0;
    const double expected =
        model.transfer_time_s(control::encoded_size(control::Message{msg})) +
        model.transfer_time_s(control::encoded_size(control::Message{ack})) +
        model.element_switch_s;
    EXPECT_NEAR(clock.now_s(), expected, 1e-15);
    EXPECT_DOUBLE_EQ(session.stats().backoff_s, 0.0);
    obs::set_enabled(true);
}

TEST(ReliableSession, TracedFramesChargeHeaderAirtime) {
    // With telemetry on, the open apply span rides the wire as a version-2
    // frame: 16 extra header bytes each way, priced as real airtime.
    obs::set_enabled(true);
    surface::Array array = make_array(3);
    control::ArrayAgent agent(array, 0);
    control::ReliableSession session(
        agent, control::LossyChannel(0.0, 0.0, util::Rng(1)),
        control::LossyChannel(0.0, 0.0, util::Rng(2)));
    const control::ControlPlaneModel model =
        control::ControlPlaneModel::fast();
    control::SimClock clock;
    session.set_timing(&model, &clock);

    ASSERT_TRUE(session.apply(0, {1, 2, 3}));
    control::SetConfig msg;
    msg.array_id = 0;
    msg.config = {1, 2, 3};
    control::SetConfigAck ack;
    ack.array_id = 0;
    constexpr std::size_t kTraceHeader = 16;  // trace_id + parent_span
    const double expected =
        model.transfer_time_s(
            control::encoded_size(control::Message{msg}) + kTraceHeader) +
        model.transfer_time_s(
            control::encoded_size(control::Message{ack}) + kTraceHeader) +
        model.element_switch_s;
    EXPECT_NEAR(clock.now_s(), expected, 1e-15);
    (void)obs::flush_spans();
}

TEST(ReliableSession, DeadChannelChargesRetriesAndBackoff) {
    obs::set_enabled(false);  // plain frames: exact timing math below
    surface::Array array = make_array(3);
    control::ArrayAgent agent(array, 0);
    // Everything sent into the downlink vanishes.
    control::ReliableSession session(
        agent, control::LossyChannel(0.0, 0.999, util::Rng(3)),
        control::LossyChannel(0.0, 0.0, util::Rng(4)),
        /*max_retries=*/3);
    const control::ControlPlaneModel model =
        control::ControlPlaneModel::fast();
    control::SimClock clock;
    session.set_timing(&model, &clock);
    control::BackoffPolicy policy;
    policy.base_s = 2e-3;
    policy.factor = 2.0;
    policy.max_s = 50e-3;
    policy.jitter_frac = 0.0;  // exact timing math
    session.set_backoff(policy, util::Rng(5));

    EXPECT_FALSE(session.apply(0, {1, 1, 1}));
    control::SetConfig msg;
    msg.array_id = 0;
    msg.config = {1, 1, 1};
    const double frame_s =
        model.transfer_time_s(control::encoded_size(control::Message{msg}));
    // 4 attempts on the downlink plus backoffs of 2, 4 and 8 ms; no ack
    // ever crossed, so no uplink time and no switch settle.
    EXPECT_NEAR(clock.now_s(), 4.0 * frame_s + (2e-3 + 4e-3 + 8e-3),
                1e-15);
    EXPECT_NEAR(session.stats().backoff_s, 14e-3, 1e-15);
    EXPECT_EQ(session.stats().gave_up, 1u);
    obs::set_enabled(true);
}

TEST(ReliableSession, JitterStaysWithinConfiguredFraction) {
    surface::Array array = make_array(3);
    control::ArrayAgent agent(array, 0);
    control::ReliableSession session(
        agent, control::LossyChannel(0.0, 0.999, util::Rng(6)),
        control::LossyChannel(0.0, 0.0, util::Rng(7)),
        /*max_retries=*/1);
    control::BackoffPolicy policy;
    policy.base_s = 10e-3;
    policy.factor = 1.0;
    policy.max_s = 10e-3;
    policy.jitter_frac = 0.25;
    session.set_backoff(policy, util::Rng(8));
    for (int i = 0; i < 32; ++i) (void)session.apply(0, {0, 0, 0});
    // 32 single-retry waits, each in [7.5, 12.5] ms.
    EXPECT_GE(session.stats().backoff_s, 32 * 7.5e-3);
    EXPECT_LE(session.stats().backoff_s, 32 * 12.5e-3);
}

// ------------------------------------------- controller degradation path

TEST(Controller, FailedApplyRevertsToLastKnownGood) {
    const surface::ConfigSpace space({3, 3});
    std::vector<surface::Config> applied;
    // Delivery fails for every configuration whose first element is 2.
    control::Controller controller(
        control::ControlPlaneModel::fast(),
        [&](const surface::Config& c) {
            if (c[0] == 2) return false;
            applied.push_back(c);
            return true;
        },
        [&]() {
            control::Observation obs;
            const surface::Config& c = applied.back();
            obs.link_snr_db = {
                {static_cast<double>(c[0]) + static_cast<double>(c[1])}};
            return obs;
        },
        1, 52);
    util::Rng rng(1);
    const control::MinSnrObjective objective(0);
    const auto outcome = controller.optimize(
        space, objective, control::ExhaustiveSearcher(), 10.0, rng);
    // The best deliverable configuration is (1, 2); the three failing
    // (2, *) trials were counted and reverted, never chosen.
    EXPECT_EQ(outcome.search.best_config, (surface::Config{1, 2}));
    EXPECT_EQ(outcome.failed_applies, 3u);
    EXPECT_EQ(outcome.reverts, 3u);
    EXPECT_TRUE(outcome.final_apply_ok);
    EXPECT_EQ(applied.back(), (surface::Config{1, 2}));
}

TEST(Controller, AllAppliesFailingIsSurfacedNotSwallowed) {
    const surface::ConfigSpace space({2, 2});
    control::Controller controller(
        control::ControlPlaneModel::fast(),
        [](const surface::Config&) { return false; },
        []() {
            control::Observation obs;
            obs.link_snr_db = {{0.0}};
            return obs;
        },
        1, 52);
    util::Rng rng(2);
    const control::MinSnrObjective objective(0);
    const auto outcome = controller.optimize(
        space, objective, control::ExhaustiveSearcher(), 10.0, rng);
    EXPECT_EQ(outcome.failed_applies, 4u);
    EXPECT_DOUBLE_EQ(outcome.search.best_score, control::kFailedTrialScore);
}

TEST(Controller, LossyChannelShrinksAffordableTrials) {
    // The acceptance check: retries and backoff consume the coherence
    // budget through the shared SimClock, so the same window affords
    // measurably fewer trials over a lossy channel.
    const auto run = [](double drop_rate) {
        surface::Array array = make_array(3);
        control::ArrayAgent agent(array, 0);
        control::ReliableSession session(
            agent, control::LossyChannel(0.0, drop_rate, util::Rng(21)),
            control::LossyChannel(0.0, drop_rate, util::Rng(22)),
            /*max_retries=*/8);
        const control::ControlPlaneModel model =
            control::ControlPlaneModel::fast();
        control::Controller controller(
            model,
            [&](const surface::Config& c) { return session.apply(0, c); },
            [&]() {
                control::Observation obs;
                obs.link_snr_db = {{10.0}};
                return obs;
            },
            1, 52);
        controller.set_apply_self_priced(true);
        session.set_timing(&model, &controller.mutable_clock());
        util::Rng rng(23);
        const control::MinSnrObjective objective(0);
        const auto outcome = controller.optimize(
            array.config_space(), objective, control::RandomSearcher(),
            80e-3, rng);
        return outcome.search.evaluations;
    };
    const std::size_t clean = run(0.0);
    const std::size_t lossy = run(0.5);
    EXPECT_GT(clean, 0u);
    EXPECT_GT(lossy, 0u);
    EXPECT_LT(lossy, clean);
}

}  // namespace
}  // namespace press::fault
