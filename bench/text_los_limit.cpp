// Reproduces the Section-3 in-text claim: "In these [line-of-sight]
// scenarios, the effect of the PRESS element configurations on the
// per-subcarrier SNR is limited to less than 2 dB ... the line-of-sight
// signal dominates over the reflection of much lower strength from the
// passive PRESS elements. This suggests that a passive PRESS array is best
// suited to improving non-line-of-sight links."
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"

namespace {

constexpr int kSeeds = 6;

void reproduce_claim() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Text claim: passive PRESS barely moves line-of-sight links "
          "===\n\n";

    // Close-range LoS link (direct path strongly dominant, as in the
    // paper's LoS bench setup) vs. the blocked NLoS setup at the paper's
    // 3 m geometry.
    core::StudyParams los_params;
    los_params.link_distance_m = 1.5;

    std::vector<double> los_swings;
    std::vector<double> nlos_swings;
    std::vector<std::vector<std::string>> rows;
    for (int s = 0; s < kSeeds; ++s) {
        core::LinkScenario los =
            core::make_link_scenario(200 + s, /*line_of_sight=*/true,
                                     los_params);
        core::LinkScenario nlos =
            core::make_link_scenario(100 + s, /*line_of_sight=*/false);
        const double los_swing = core::max_true_swing_db(los);
        const double nlos_swing = core::max_true_swing_db(nlos);
        los_swings.push_back(los_swing);
        nlos_swings.push_back(nlos_swing);
        rows.push_back({std::to_string(s), core::fmt(los_swing, 2),
                        core::fmt(nlos_swing, 2)});
    }
    core::print_table(os,
                      {"seed", "LoS max swing (dB)", "NLoS max swing (dB)"},
                      rows);
    os << "\nPaper: LoS effect < 2 dB; NLoS swings up to 26 dB -> passive "
          "arrays suit non-line-of-sight links.\n";
    os << "Ours:  LoS median " << core::fmt(util::median(los_swings), 2)
       << " dB (max " << core::fmt(util::max_value(los_swings), 2)
       << "), NLoS median " << core::fmt(util::median(nlos_swings), 2)
       << " dB (max " << core::fmt(util::max_value(nlos_swings), 2)
       << ") -- NLoS/LoS gap "
       << core::fmt(util::median(nlos_swings) - util::median(los_swings), 1)
       << " dB.\n\n";
}

void BM_TrueSwingLoS(benchmark::State& state) {
    using namespace press;
    core::StudyParams p;
    p.link_distance_m = 1.5;
    core::LinkScenario scenario = core::make_link_scenario(200, true, p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::max_true_swing_db(scenario));
    }
}
BENCHMARK(BM_TrueSwingLoS)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_claim();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
