// Reproduces Figure 8: "The distribution of MIMO channel condition number
// across subcarriers and experimental repetitions. Each curve on the CDF is
// a separate PRESS phase setting, with the phase settings demonstrating the
// best (lowest) and worst (highest) condition numbers appearing thicker and
// in color." Headline: PRESS changes the 2x2 condition number by ~1.5 dB.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "phy/mimo.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace {

constexpr std::uint64_t kSeed = 500;
constexpr int kMeasurements = 50;  // the paper averages 50 per config

void reproduce_figure() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Figure 8: CDF of 2x2 MIMO condition number per PRESS "
          "configuration ===\n\n";

    core::MimoScenario scenario = core::make_mimo_scenario(kSeed);
    util::Rng rng(9);
    const core::MimoSweep sweep =
        core::sweep_mimo(scenario, kMeasurements, rng);

    // Print the CDFs of the best and worst configurations (the highlighted
    // curves of the figure) plus a handful of background configurations.
    core::print_cdf(os, "fig8-best[" +
                            sweep.config_labels[sweep.best_config] + "]",
                    sweep.condition_db[sweep.best_config], 25);
    core::print_cdf(os, "fig8-worst[" +
                            sweep.config_labels[sweep.worst_config] + "]",
                    sweep.condition_db[sweep.worst_config], 25);
    for (std::size_t c = 0; c < sweep.condition_db.size(); c += 16)
        core::print_cdf(os, "fig8-bg" + std::to_string(c),
                        sweep.condition_db[c], 25);

    std::vector<std::vector<std::string>> rows;
    auto add_row = [&](const char* tag, std::size_t c) {
        const auto& cond = sweep.condition_db[c];
        rows.push_back({tag, sweep.config_labels[c],
                        core::fmt(util::percentile(cond, 10.0), 2),
                        core::fmt(util::median(cond), 2),
                        core::fmt(util::percentile(cond, 90.0), 2)});
    };
    add_row("best", sweep.best_config);
    add_row("worst", sweep.worst_config);
    os << "\n";
    core::print_table(os,
                      {"setting", "config", "p10 (dB)", "median (dB)",
                       "p90 (dB)"},
                      rows);

    // Capacity impact: condition number matters because it bounds spatial
    // multiplexing capacity (the paper: "critically important to the
    // channel capacity").
    scenario.medium.array(scenario.array_id)
        .apply(scenario.medium.array(scenario.array_id)
                   .config_space()
                   .at(sweep.best_config));
    util::Rng cap_rng(11);
    const double snr_linear = util::db_to_linear(20.0);
    const phy::MimoChannelEstimate best_est = scenario.medium.sound_mimo(
        scenario.tx_antennas, scenario.rx_antennas, scenario.profile,
        kMeasurements, cap_rng);
    scenario.medium.array(scenario.array_id)
        .apply(scenario.medium.array(scenario.array_id)
                   .config_space()
                   .at(sweep.worst_config));
    const phy::MimoChannelEstimate worst_est = scenario.medium.sound_mimo(
        scenario.tx_antennas, scenario.rx_antennas, scenario.profile,
        kMeasurements, cap_rng);

    os << "\nPaper: best-vs-worst configuration shifts the condition-number "
          "distribution by ~1.5 dB.\n";
    os << "Ours:  median gap " << core::fmt(sweep.median_gap_db, 2)
       << " dB; mean 2x2 capacity at 20 dB SNR: best config "
       << core::fmt(phy::mean_capacity_bps_hz(best_est, snr_linear), 2)
       << " b/s/Hz vs worst config "
       << core::fmt(phy::mean_capacity_bps_hz(worst_est, snr_linear), 2)
       << " b/s/Hz.\n\n";
}

void BM_MimoSounding2x2(benchmark::State& state) {
    using namespace press;
    core::MimoScenario scenario = core::make_mimo_scenario(kSeed);
    util::Rng rng(9);
    for (auto _ : state) {
        auto est = scenario.medium.sound_mimo(scenario.tx_antennas,
                                              scenario.rx_antennas,
                                              scenario.profile, 1, rng);
        benchmark::DoNotOptimize(est.h.data());
    }
}
BENCHMARK(BM_MimoSounding2x2)->Unit(benchmark::kMicrosecond);

void BM_ConditionNumbers(benchmark::State& state) {
    using namespace press;
    core::MimoScenario scenario = core::make_mimo_scenario(kSeed);
    util::Rng rng(9);
    auto est = scenario.medium.sound_mimo(scenario.tx_antennas,
                                          scenario.rx_antennas,
                                          scenario.profile, 1, rng);
    for (auto _ : state) {
        auto cond = phy::condition_numbers_db(est);
        benchmark::DoNotOptimize(cond.data());
    }
}
BENCHMARK(BM_ConditionNumbers)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // Telemetry accumulated by the figure reproduction and the timing
    // section above (trace counts, cache activity, search convergence);
    // no-op when PRESS_TELEMETRY is off.
    const press::obs::RunManifest manifest =
        press::obs::RunManifest::capture("fig8_mimo_condition", kSeed);
    const press::obs::RunExportPaths paths =
        press::obs::write_run_exports("fig8_mimo_condition", manifest);
    if (paths.telemetry) std::cout << "wrote " << *paths.telemetry << "\n";
    if (paths.trace) std::cout << "wrote " << *paths.trace << "\n";
    return 0;
}
