// Microbenchmarks of the library's hot kernels: FFTs, SVD, ray tracing,
// channel synthesis, frame processing and the control-plane codec. These
// are the costs a real-time PRESS controller pays inside the coherence
// window, so their absolute numbers matter to the Section-2 timing
// argument.
#include <benchmark/benchmark.h>

#include "control/message.hpp"
#include "core/scenarios.hpp"
#include "em/channel.hpp"
#include "phy/frame.hpp"
#include "util/fft.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace press;

util::CVec random_cvec(std::size_t n, util::Rng& rng) {
    util::CVec v(n);
    for (auto& x : v) x = rng.complex_gaussian(1.0);
    return v;
}

void BM_Fft(benchmark::State& state) {
    util::Rng rng(1);
    util::CVec x = random_cvec(static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) {
        auto y = util::fft(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(128)->Arg(1024);

void BM_FftBluestein(benchmark::State& state) {
    util::Rng rng(1);
    util::CVec x = random_cvec(100, rng);  // non-power-of-two
    for (auto _ : state) {
        auto y = util::fft(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FftBluestein);

void BM_SingularValues(benchmark::State& state) {
    util::Rng rng(2);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    util::Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m.at(r, c) = rng.complex_gaussian(1.0);
    for (auto _ : state) {
        auto sv = m.singular_values();
        benchmark::DoNotOptimize(sv.data());
    }
}
BENCHMARK(BM_SingularValues)->Arg(2)->Arg(4)->Arg(8);

void BM_EnvironmentTrace(benchmark::State& state) {
    core::StudyParams p;
    p.wall_reflection_order = static_cast<int>(state.range(0));
    core::LinkScenario scenario = core::make_link_scenario(100, false, p);
    const auto& medium = scenario.system.medium();
    const auto& link = scenario.system.link(0);
    for (auto _ : state) {
        auto paths = medium.environment().trace(
            link.tx, link.rx, medium.ofdm().carrier_hz());
        benchmark::DoNotOptimize(paths.data());
    }
}
BENCHMARK(BM_EnvironmentTrace)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void BM_FrequencyResponse(benchmark::State& state) {
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    const auto& medium = scenario.system.medium();
    const auto paths = medium.resolve_paths(scenario.system.link(0));
    const auto freqs = medium.ofdm().used_frequencies_hz();
    for (auto _ : state) {
        auto h = em::frequency_response(paths, freqs);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_FrequencyResponse)->Unit(benchmark::kMicrosecond);

void BM_ImpulseResponse(benchmark::State& state) {
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    const auto& medium = scenario.system.medium();
    const auto paths = medium.resolve_paths(scenario.system.link(0));
    for (auto _ : state) {
        auto h = em::impulse_response(paths, medium.ofdm().carrier_hz(),
                                      medium.ofdm().sample_rate_hz(), 64);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_ImpulseResponse)->Unit(benchmark::kMicrosecond);

void BM_FrameBuildParse(benchmark::State& state) {
    const phy::OfdmParams params = phy::OfdmParams::wifi20();
    phy::FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 4;
    util::Rng rng(3);
    for (auto _ : state) {
        auto tx = phy::build_frame(params, spec, rng);
        auto rx = phy::parse_frame(params, spec, tx.samples);
        benchmark::DoNotOptimize(rx.ltf_estimates.data());
    }
}
BENCHMARK(BM_FrameBuildParse)->Unit(benchmark::kMicrosecond);

void BM_MessageRoundtrip(benchmark::State& state) {
    control::SetConfig msg;
    msg.array_id = 3;
    msg.config = {0, 1, 2, 3, 0, 1, 2, 3};
    for (auto _ : state) {
        auto bytes = control::encode(control::Message{msg}, 42);
        auto decoded = control::decode(bytes);
        benchmark::DoNotOptimize(decoded.seq);
    }
}
BENCHMARK(BM_MessageRoundtrip);

void BM_Crc16(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                   0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(control::crc16(data));
    }
}
BENCHMARK(BM_Crc16)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
