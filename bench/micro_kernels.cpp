// Microbenchmarks of the library's hot kernels: FFTs, SVD, ray tracing,
// channel synthesis, frame processing and the control-plane codec. These
// are the costs a real-time PRESS controller pays inside the coherence
// window, so their absolute numbers matter to the Section-2 timing
// argument.
#include <benchmark/benchmark.h>

#include "control/message.hpp"
#include "core/link_cache.hpp"
#include "core/scenarios.hpp"
#include "em/channel.hpp"
#include "phy/frame.hpp"
#include "phy/ru.hpp"
#include "util/fft.hpp"
#include "util/fft_plan.hpp"
#include "util/kernels.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace press;

util::CVec random_cvec(std::size_t n, util::Rng& rng) {
    util::CVec v(n);
    for (auto& x : v) x = rng.complex_gaussian(1.0);
    return v;
}

void BM_Fft(benchmark::State& state) {
    util::Rng rng(1);
    util::CVec x = random_cvec(static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) {
        auto y = util::fft(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(128)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_FftBluestein(benchmark::State& state) {
    util::Rng rng(1);
    // Non-powers-of-two: 100 (the historical case) and 996 (the Wi-Fi 6E
    // used-tone count, whose Bluestein convolution runs at 2048).
    util::CVec x =
        random_cvec(static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) {
        auto y = util::fft(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FftBluestein)->Arg(100)->Arg(996);

// Planned execution against the process-wide FftPlan cache: all twiddle,
// bit-reversal and Bluestein chirp setup hoisted into the plan, output
// and scratch reused — the steady-state transform cost at the wideband
// sizes (996 exercises the planned Bluestein path; 64/2048/4096 the
// planned radix-2 path). Compare with BM_Fft/BM_FftBluestein at the same
// length for the per-call setup the plan removes.
void BM_FftPlanForward(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const util::FftPlan& plan = util::plan_for(n);
    util::Rng rng(1);
    const util::CVec x = random_cvec(n, rng);
    util::CVec out;
    util::FftScratch scratch;
    plan.forward(x, out, scratch);  // size the output and scratch once
    for (auto _ : state) {
        plan.forward(x, out, scratch);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FftPlanForward)->Arg(64)->Arg(996)->Arg(2048)->Arg(4096);

void BM_SingularValues(benchmark::State& state) {
    util::Rng rng(2);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    util::Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m.at(r, c) = rng.complex_gaussian(1.0);
    for (auto _ : state) {
        auto sv = m.singular_values();
        benchmark::DoNotOptimize(sv.data());
    }
}
BENCHMARK(BM_SingularValues)->Arg(2)->Arg(4)->Arg(8);

void BM_EnvironmentTrace(benchmark::State& state) {
    core::StudyParams p;
    p.wall_reflection_order = static_cast<int>(state.range(0));
    core::LinkScenario scenario = core::make_link_scenario(100, false, p);
    const auto& medium = scenario.system.medium();
    const auto& link = scenario.system.link(0);
    for (auto _ : state) {
        auto paths = medium.environment().trace(
            link.tx, link.rx, medium.ofdm().carrier_hz());
        benchmark::DoNotOptimize(paths.data());
    }
}
BENCHMARK(BM_EnvironmentTrace)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void BM_FrequencyResponse(benchmark::State& state) {
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    const auto& medium = scenario.system.medium();
    const auto paths = medium.resolve_paths(scenario.system.link(0));
    const auto freqs = medium.ofdm().used_frequencies_hz();
    for (auto _ : state) {
        auto h = em::frequency_response(paths, freqs);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_FrequencyResponse)->Unit(benchmark::kMicrosecond);

void BM_ImpulseResponse(benchmark::State& state) {
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    const auto& medium = scenario.system.medium();
    const auto paths = medium.resolve_paths(scenario.system.link(0));
    for (auto _ : state) {
        auto h = em::impulse_response(paths, medium.ofdm().carrier_hz(),
                                      medium.ofdm().sample_rate_hz(), 64);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_ImpulseResponse)->Unit(benchmark::kMicrosecond);

void BM_FrameBuildParse(benchmark::State& state) {
    const phy::OfdmParams params = phy::OfdmParams::wifi20();
    phy::FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 4;
    util::Rng rng(3);
    for (auto _ : state) {
        auto tx = phy::build_frame(params, spec, rng);
        auto rx = phy::parse_frame(params, spec, tx.samples);
        benchmark::DoNotOptimize(rx.ltf_estimates.data());
    }
}
BENCHMARK(BM_FrameBuildParse)->Unit(benchmark::kMicrosecond);

void BM_MessageRoundtrip(benchmark::State& state) {
    control::SetConfig msg;
    msg.array_id = 3;
    msg.config = {0, 1, 2, 3, 0, 1, 2, 3};
    for (auto _ : state) {
        auto bytes = control::encode(control::Message{msg}, 42);
        auto decoded = control::decode(bytes);
        benchmark::DoNotOptimize(decoded.seq);
    }
}
BENCHMARK(BM_MessageRoundtrip);

void BM_Crc16(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                   0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(control::crc16(data));
    }
}
BENCHMARK(BM_Crc16)->Arg(64)->Arg(1024);

// The factored-cache evaluation path: recombining H = H_static + B.g(c)
// (a sparse complex GEMV over element rows) versus re-synthesizing the
// CFR from a fresh path resolve — the per-candidate cost a configuration
// search actually pays, with `num_elements` as the row count knob.
void BM_CachedRecombination(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    // Cycle candidates odometer-style: space.size() overflows 64 bits at
    // 64 four-state elements, so never enumerate by flat index here.
    surface::Config c(space.num_elements(), 0);
    for (auto _ : state) {
        for (std::size_t e = 0; e < c.size(); ++e) {
            if (++c[e] < space.radices()[e]) break;
            c[e] = 0;
        }
        auto h = cache.response_with(medium, scenario.link_id, link,
                                     scenario.array_id, c);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_CachedRecombination)->Arg(3)->Arg(16)->Arg(64);

void BM_UncachedResynthesis(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const std::vector<double> freqs = medium.ofdm().used_frequencies_hz();
    for (auto _ : state) {
        auto h = em::frequency_response(medium.resolve_paths(link), freqs);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_UncachedResynthesis)
    ->Arg(3)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// The SoA fast path the batch workers actually run: response_into() into
// a reused split-complex scratch — same recombination as
// BM_CachedRecombination minus the per-call allocation and interleave.
void BM_ResponseInto(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    surface::Config c(space.num_elements(), 0);
    util::kernels::SplitVec h;
    for (auto _ : state) {
        for (std::size_t e = 0; e < c.size(); ++e) {
            if (++c[e] < space.radices()[e]) break;
            c[e] = 0;
        }
        cache.response_into(medium, scenario.link_id, link,
                            scenario.array_id, c, h);
        benchmark::DoNotOptimize(h.re.data());
        benchmark::DoNotOptimize(h.im.data());
    }
}
BENCHMARK(BM_ResponseInto)->Arg(3)->Arg(16)->Arg(64);

// One coordinate-sweep candidate on the incremental delta path: copy the
// cached base response and add the swept element's row — O(1) rows
// instead of O(elements), which is where the sweep's 5x comes from.
void BM_DeltaCandidate(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    const surface::Config base(space.num_elements(), 0);
    util::kernels::SplitVec base_h, h;
    cache.response_base_into(medium, scenario.link_id, link,
                             scenario.array_id, base, 0, base_h);
    h.resize(base_h.size());
    int s = 0;
    for (auto _ : state) {
        s = (s + 1) % space.radices()[0];
        util::kernels::copy(util::kernels::active(), base_h.re.data(),
                            base_h.im.data(), h.re.data(), h.im.data(),
                            base_h.size());
        cache.accumulate_element_row(scenario.link_id, scenario.array_id,
                                     0, s, h);
        benchmark::DoNotOptimize(h.re.data());
    }
}
BENCHMARK(BM_DeltaCandidate)->Arg(16)->Arg(64);

// Raw kernel throughput per dispatch flavor (0 = scalar, 1 = native):
// the row gather-accumulate at a realistic subcarrier count and row set.
void BM_GatherAccumulate(benchmark::State& state) {
    const auto d = state.range(0) == 0 ? util::kernels::Dispatch::kScalar
                                       : util::kernels::Dispatch::kNative;
    const std::size_t n = 52;
    const std::size_t num_rows = static_cast<std::size_t>(state.range(1));
    util::Rng rng(5);
    std::vector<double> table_re(num_rows * n), table_im(num_rows * n);
    for (auto& x : table_re) x = rng.uniform(-1.0, 1.0);
    for (auto& x : table_im) x = rng.uniform(-1.0, 1.0);
    std::vector<std::size_t> rows(num_rows);
    for (std::size_t r = 0; r < num_rows; ++r) rows[r] = r;
    std::vector<double> dst_re(n, 0.0), dst_im(n, 0.0);
    for (auto _ : state) {
        util::kernels::gather_accumulate(d, table_re.data(),
                                         table_im.data(), rows.data(),
                                         num_rows, dst_re.data(),
                                         dst_im.data(), n);
        benchmark::DoNotOptimize(dst_re.data());
    }
}
BENCHMARK(BM_GatherAccumulate)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64});

// Helper for the masked-kernel benches: the bench's RU-mask shapes at a
// given tone count. shape 0 = full mask (one aligned span at offset 0);
// shape 1 = 8 uniform RUs with RUs 2 and 5 punctured (ragged,
// non-lane-aligned span offsets — the preamble-puncturing case).
phy::RuMask bench_mask(std::size_t n, int shape) {
    if (shape == 0) return phy::RuMask::full(n);
    return phy::RuMask::uniform(n, 8).punctured({2, 5});
}

// Masked row accumulate over the mask's active ranges — the tile-bounded
// delta sweep's row-add. Args: {dispatch, n, shape} with dispatch 0 =
// scalar / 1 = native and shape as in bench_mask (aligned full span vs
// ragged punctured spans), at the narrowband and wideband tone counts.
void BM_MaskedAccumulate(benchmark::State& state) {
    const auto d = state.range(0) == 0 ? util::kernels::Dispatch::kScalar
                                       : util::kernels::Dispatch::kNative;
    const std::size_t n = static_cast<std::size_t>(state.range(1));
    const phy::RuMask mask = bench_mask(n, static_cast<int>(state.range(2)));
    std::vector<util::kernels::IndexRange> ranges;
    for (const phy::RuRange& r : mask.active_ranges())
        ranges.push_back({r.first, r.last - r.first});
    util::Rng rng(11);
    std::vector<double> row_re(n), row_im(n), dst_re(n, 0.0), dst_im(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
        row_re[k] = rng.uniform(-1.0, 1.0);
        row_im[k] = rng.uniform(-1.0, 1.0);
    }
    for (auto _ : state) {
        util::kernels::masked_accumulate(d, row_re.data(), row_im.data(),
                                         dst_re.data(), dst_im.data(),
                                         ranges.data(), ranges.size());
        benchmark::DoNotOptimize(dst_re.data());
    }
}
BENCHMARK(BM_MaskedAccumulate)
    ->Args({0, 64, 1})
    ->Args({1, 64, 1})
    ->Args({0, 996, 0})
    ->Args({1, 996, 0})
    ->Args({0, 996, 1})
    ->Args({1, 996, 1})
    ->Args({0, 2048, 1})
    ->Args({1, 2048, 1})
    ->Args({0, 4096, 1})
    ->Args({1, 4096, 1});

// The fused coordinate delta (dst = base + row in one pass) against the
// same spans — compare with BM_MaskedAccumulate plus a copy for the
// traffic the fusion removes. Args as in BM_MaskedAccumulate.
void BM_MaskedCopyAccumulate(benchmark::State& state) {
    const auto d = state.range(0) == 0 ? util::kernels::Dispatch::kScalar
                                       : util::kernels::Dispatch::kNative;
    const std::size_t n = static_cast<std::size_t>(state.range(1));
    const phy::RuMask mask = bench_mask(n, static_cast<int>(state.range(2)));
    std::vector<util::kernels::IndexRange> ranges;
    for (const phy::RuRange& r : mask.active_ranges())
        ranges.push_back({r.first, r.last - r.first});
    util::Rng rng(11);
    std::vector<double> base_re(n), base_im(n), row_re(n), row_im(n);
    std::vector<double> dst_re(n, 0.0), dst_im(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
        base_re[k] = rng.uniform(-1.0, 1.0);
        base_im[k] = rng.uniform(-1.0, 1.0);
        row_re[k] = rng.uniform(-1.0, 1.0);
        row_im[k] = rng.uniform(-1.0, 1.0);
    }
    for (auto _ : state) {
        util::kernels::masked_copy_accumulate(
            d, base_re.data(), base_im.data(), row_re.data(), row_im.data(),
            dst_re.data(), dst_im.data(), ranges.data(), ranges.size());
        benchmark::DoNotOptimize(dst_re.data());
    }
}
BENCHMARK(BM_MaskedCopyAccumulate)
    ->Args({0, 64, 1})
    ->Args({1, 64, 1})
    ->Args({0, 996, 0})
    ->Args({1, 996, 0})
    ->Args({0, 996, 1})
    ->Args({1, 996, 1})
    ->Args({0, 2048, 1})
    ->Args({1, 2048, 1})
    ->Args({0, 4096, 1})
    ->Args({1, 4096, 1});

// The masked fused min-SNR reduction through the mask's dense index
// list — the scoring tail of a MaskedSnrObjective candidate. Args as in
// BM_MaskedAccumulate (shape 0 reduces every tone via the list).
void BM_MaskedSnrDbMin(benchmark::State& state) {
    const auto d = state.range(0) == 0 ? util::kernels::Dispatch::kScalar
                                       : util::kernels::Dispatch::kNative;
    const std::size_t n = static_cast<std::size_t>(state.range(1));
    const phy::RuMask mask = bench_mask(n, static_cast<int>(state.range(2)));
    const std::vector<std::size_t>& idx = mask.active_indices();
    util::Rng rng(13);
    std::vector<double> mean_re(n), mean_im(n), noise_var(n);
    for (std::size_t k = 0; k < n; ++k) {
        mean_re[k] = rng.uniform(-1.0, 1.0);
        mean_im[k] = rng.uniform(-1.0, 1.0);
        noise_var[k] = rng.uniform(1e-9, 1e-6);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(util::kernels::masked_snr_db_min(
            d, mean_re.data(), mean_im.data(), noise_var.data(), idx.data(),
            idx.size(), 60.0, 0.0));
    }
}
BENCHMARK(BM_MaskedSnrDbMin)
    ->Args({0, 64, 1})
    ->Args({1, 64, 1})
    ->Args({0, 996, 0})
    ->Args({1, 996, 0})
    ->Args({0, 996, 1})
    ->Args({1, 996, 1})
    ->Args({0, 4096, 1})
    ->Args({1, 4096, 1});

// The fused single-link score: sounding draws + LTF combining + log-SNR
// min, straight from a split response — the entire per-candidate cost of
// a fused MinSnr objective minus the response recombination.
void BM_FusedSoundAndScore(benchmark::State& state) {
    const auto d = state.range(0) == 0 ? util::kernels::Dispatch::kScalar
                                       : util::kernels::Dispatch::kNative;
    const std::size_t n = 52;
    const std::size_t repeats = 4;
    util::Rng rng(7);
    std::vector<double> h_re(n), h_im(n);
    for (std::size_t k = 0; k < n; ++k) {
        h_re[k] = rng.uniform(-1.0, 1.0);
        h_im[k] = rng.uniform(-1.0, 1.0);
    }
    std::vector<double> raw_re(repeats * n), raw_im(repeats * n);
    std::vector<double> mean_re(n), mean_im(n), noise_var(n);
    const double var = 1e-6;
    for (auto _ : state) {
        for (std::size_t r = 0; r < repeats; ++r)
            for (std::size_t k = 0; k < n; ++k) {
                const auto w = rng.complex_gaussian(var);
                raw_re[r * n + k] = h_re[k] + w.real();
                raw_im[r * n + k] = h_im[k] + w.imag();
            }
        util::kernels::ltf_mean_var(d, raw_re.data(), raw_im.data(),
                                    repeats, n, mean_re.data(),
                                    mean_im.data(), noise_var.data());
        benchmark::DoNotOptimize(util::kernels::snr_db_min(
            d, mean_re.data(), mean_im.data(), noise_var.data(), n, 60.0,
            0.0));
    }
}
BENCHMARK(BM_FusedSoundAndScore)->Arg(0)->Arg(1);

void BM_CacheRebuild(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    core::LinkCache cache;
    for (auto _ : state) {
        cache.invalidate();
        cache.warm(medium, scenario.link_id, link);
        benchmark::DoNotOptimize(cache.stats().misses);
    }
}
BENCHMARK(BM_CacheRebuild)->Arg(3)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
