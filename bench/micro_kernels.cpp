// Microbenchmarks of the library's hot kernels: FFTs, SVD, ray tracing,
// channel synthesis, frame processing and the control-plane codec. These
// are the costs a real-time PRESS controller pays inside the coherence
// window, so their absolute numbers matter to the Section-2 timing
// argument.
#include <benchmark/benchmark.h>

#include "control/message.hpp"
#include "core/link_cache.hpp"
#include "core/scenarios.hpp"
#include "em/channel.hpp"
#include "phy/frame.hpp"
#include "util/fft.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace press;

util::CVec random_cvec(std::size_t n, util::Rng& rng) {
    util::CVec v(n);
    for (auto& x : v) x = rng.complex_gaussian(1.0);
    return v;
}

void BM_Fft(benchmark::State& state) {
    util::Rng rng(1);
    util::CVec x = random_cvec(static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) {
        auto y = util::fft(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(128)->Arg(1024);

void BM_FftBluestein(benchmark::State& state) {
    util::Rng rng(1);
    util::CVec x = random_cvec(100, rng);  // non-power-of-two
    for (auto _ : state) {
        auto y = util::fft(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FftBluestein);

void BM_SingularValues(benchmark::State& state) {
    util::Rng rng(2);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    util::Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m.at(r, c) = rng.complex_gaussian(1.0);
    for (auto _ : state) {
        auto sv = m.singular_values();
        benchmark::DoNotOptimize(sv.data());
    }
}
BENCHMARK(BM_SingularValues)->Arg(2)->Arg(4)->Arg(8);

void BM_EnvironmentTrace(benchmark::State& state) {
    core::StudyParams p;
    p.wall_reflection_order = static_cast<int>(state.range(0));
    core::LinkScenario scenario = core::make_link_scenario(100, false, p);
    const auto& medium = scenario.system.medium();
    const auto& link = scenario.system.link(0);
    for (auto _ : state) {
        auto paths = medium.environment().trace(
            link.tx, link.rx, medium.ofdm().carrier_hz());
        benchmark::DoNotOptimize(paths.data());
    }
}
BENCHMARK(BM_EnvironmentTrace)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void BM_FrequencyResponse(benchmark::State& state) {
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    const auto& medium = scenario.system.medium();
    const auto paths = medium.resolve_paths(scenario.system.link(0));
    const auto freqs = medium.ofdm().used_frequencies_hz();
    for (auto _ : state) {
        auto h = em::frequency_response(paths, freqs);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_FrequencyResponse)->Unit(benchmark::kMicrosecond);

void BM_ImpulseResponse(benchmark::State& state) {
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    const auto& medium = scenario.system.medium();
    const auto paths = medium.resolve_paths(scenario.system.link(0));
    for (auto _ : state) {
        auto h = em::impulse_response(paths, medium.ofdm().carrier_hz(),
                                      medium.ofdm().sample_rate_hz(), 64);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_ImpulseResponse)->Unit(benchmark::kMicrosecond);

void BM_FrameBuildParse(benchmark::State& state) {
    const phy::OfdmParams params = phy::OfdmParams::wifi20();
    phy::FrameSpec spec;
    spec.num_ltf = 4;
    spec.num_data = 4;
    util::Rng rng(3);
    for (auto _ : state) {
        auto tx = phy::build_frame(params, spec, rng);
        auto rx = phy::parse_frame(params, spec, tx.samples);
        benchmark::DoNotOptimize(rx.ltf_estimates.data());
    }
}
BENCHMARK(BM_FrameBuildParse)->Unit(benchmark::kMicrosecond);

void BM_MessageRoundtrip(benchmark::State& state) {
    control::SetConfig msg;
    msg.array_id = 3;
    msg.config = {0, 1, 2, 3, 0, 1, 2, 3};
    for (auto _ : state) {
        auto bytes = control::encode(control::Message{msg}, 42);
        auto decoded = control::decode(bytes);
        benchmark::DoNotOptimize(decoded.seq);
    }
}
BENCHMARK(BM_MessageRoundtrip);

void BM_Crc16(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                   0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(control::crc16(data));
    }
}
BENCHMARK(BM_Crc16)->Arg(64)->Arg(1024);

// The factored-cache evaluation path: recombining H = H_static + B.g(c)
// (a sparse complex GEMV over element rows) versus re-synthesizing the
// CFR from a fresh path resolve — the per-candidate cost a configuration
// search actually pays, with `num_elements` as the row count knob.
void BM_CachedRecombination(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::ConfigSpace space =
        medium.array(scenario.array_id).config_space();
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id, link);
    // Cycle candidates odometer-style: space.size() overflows 64 bits at
    // 64 four-state elements, so never enumerate by flat index here.
    surface::Config c(space.num_elements(), 0);
    for (auto _ : state) {
        for (std::size_t e = 0; e < c.size(); ++e) {
            if (++c[e] < space.radices()[e]) break;
            c[e] = 0;
        }
        auto h = cache.response_with(medium, scenario.link_id, link,
                                     scenario.array_id, c);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_CachedRecombination)->Arg(3)->Arg(16)->Arg(64);

void BM_UncachedResynthesis(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const std::vector<double> freqs = medium.ofdm().used_frequencies_hz();
    for (auto _ : state) {
        auto h = em::frequency_response(medium.resolve_paths(link), freqs);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_UncachedResynthesis)
    ->Arg(3)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_CacheRebuild(benchmark::State& state) {
    core::StudyParams params;
    params.num_elements = static_cast<int>(state.range(0));
    core::LinkScenario scenario =
        core::make_link_scenario(1, false, params);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    core::LinkCache cache;
    for (auto _ : state) {
        cache.invalidate();
        cache.warm(medium, scenario.link_id, link);
        benchmark::DoNotOptimize(cache.stats().misses);
    }
}
BENCHMARK(BM_CacheRebuild)->Arg(3)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
