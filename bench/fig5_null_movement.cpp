// Reproduces Figure 5: "Complementary CDF of the change in null location
// (subcarrier index) between pairs of PRESS element configurations, among
// configurations that exhibit a null. Each curve contains data from a
// separate experimental repetition." The paper computes this on the data
// of its Figure 4(e); we use the placement whose statistics sit closest to
// that panel's.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "util/stats.hpp"

namespace {

// The placement whose null statistics most resemble the paper's panel (e).
constexpr std::uint64_t kPlacementSeed = 116;  // panel-(e)-like placement
constexpr int kTrials = 10;

void reproduce_figure() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Figure 5: CCDF of null movement between configuration pairs "
          "===\n\n";

    core::LinkScenario scenario =
        core::make_link_scenario(kPlacementSeed, /*line_of_sight=*/false);
    // A measurement frame carries many training symbols; average enough of
    // them that estimator noise does not masquerade as spectral nulls.
    scenario.system.set_sounding_repeats(10);
    util::Rng rng(7000);
    core::ConfigSweep sweep =
        core::sweep_configurations(scenario, kTrials, rng);

    double overall_max = 0.0;
    for (int t = 0; t < kTrials; ++t) {
        const std::vector<double> moves = core::null_movements_for_trial(
            sweep, static_cast<std::size_t>(t));
        if (moves.empty()) {
            os << "rep" << t << " (no qualifying nulls)\n";
            continue;
        }
        overall_max = std::max(overall_max, util::max_value(moves));
        // Discrete CCDF over integer movements (the paper's x axis is
        // 0..10 subcarriers).
        const std::size_t max_bin = 24;
        const std::vector<std::size_t> hist =
            util::integer_histogram(moves, max_bin);
        const double total = static_cast<double>(moves.size());
        double above = total;
        for (std::size_t m = 0; m <= max_bin; ++m) {
            const double ccdf = above / total;
            if (ccdf <= 0.0) break;
            os << "fig5-rep" << t << " " << m << " "
               << core::fmt(ccdf, 5) << "\n";
            above -= static_cast<double>(hist[m]);
        }
    }
    os << "\nPaper: most pairs move the null 0-1 subcarriers; a few move it "
          "over three (up to ~9, i.e. >1 MHz).\n";
    os << "Ours:  largest observed movement " << core::fmt(overall_max, 0)
       << " subcarriers.\n\n";
}

void BM_NullMovementAnalysis(benchmark::State& state) {
    using namespace press;
    core::LinkScenario scenario =
        core::make_link_scenario(kPlacementSeed, false);
    util::Rng rng(7000);
    core::ConfigSweep sweep = core::sweep_configurations(scenario, 2, rng);
    for (auto _ : state) {
        auto moves = core::null_movements(sweep);
        benchmark::DoNotOptimize(moves.data());
    }
}
BENCHMARK(BM_NullMovementAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // Telemetry accumulated by the figure reproduction and the timing
    // section above (trace counts, cache activity, search convergence);
    // no-op when PRESS_TELEMETRY is off.
    const press::obs::RunManifest manifest =
        press::obs::RunManifest::capture("fig5_null_movement", kPlacementSeed);
    const press::obs::RunExportPaths paths =
        press::obs::write_run_exports("fig5_null_movement", manifest);
    if (paths.telemetry) std::cout << "wrote " << *paths.telemetry << "\n";
    if (paths.trace) std::cout << "wrote " << *paths.trace << "\n";
    return 0;
}
