// The agility-vs-optimization trade-off (paper Section 2): serving several
// time-multiplexed links, is it better to reconfigure the array for each
// link's slot (agile, but each slot pays switching overhead) or to hold
// one jointly optimized configuration (no overhead, but a compromise
// channel)? The answer flips with the slot duration — exactly the
// packet-level-timescale tension the paper describes ("PRESS will very
// likely reap additional performance benefits from switching strategies on
// packet-level timescales of one to two milliseconds").
#include <benchmark/benchmark.h>

#include <iostream>

#include "control/scheduler.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "phy/rate.hpp"
#include "util/stats.hpp"

namespace {

using namespace press;

// A study room serving three clients from one AP.
struct MultiLinkWorld {
    core::LinkScenario scenario;
    std::vector<std::size_t> link_ids;
};

MultiLinkWorld make_world(std::uint64_t seed) {
    MultiLinkWorld world{core::make_link_scenario(seed, false), {}};
    core::System& system = world.scenario.system;
    // IoT-class power so links sit on the MCS ladder rather than pinned at
    // the top rate.
    system.link(world.scenario.link_id).profile.tx_power_dbm = -26.0;
    world.link_ids.push_back(world.scenario.link_id);
    // Two more clients at different spots behind the blocker.
    for (int i = 0; i < 2; ++i) {
        sdr::Link link = system.link(world.scenario.link_id);
        link.rx.position.y += 0.9 * (i + 1);
        link.rx.position.x += 0.4 * i;
        world.link_ids.push_back(system.add_link(link));
    }
    return world;
}

void run_ablation() {
    std::ostream& os = std::cout;
    os << "=== Agility vs. joint optimization for 3 time-multiplexed links "
          "===\n\n";

    std::vector<std::vector<std::string>> rows;
    for (double slot_ms : {0.5, 1.0, 2.0, 10.0}) {
        for (const auto strategy :
             {control::MultiLinkStrategy::kStaticOff,
              control::MultiLinkStrategy::kJoint,
              control::MultiLinkStrategy::kPerLink}) {
            double eff = 0.0;
            double raw = 0.0;
            double airtime = 0.0;
            const int seeds = 3;
            for (int s = 0; s < seeds; ++s) {
                MultiLinkWorld world = make_world(100 + s);
                util::Rng rng(8000 + s);
                core::System& system = world.scenario.system;
                const auto space = system.medium()
                                       .array(world.scenario.array_id)
                                       .config_space();
                const control::LinkEval eval =
                    [&](std::size_t link, const surface::Config& c) {
                        system.apply(world.scenario.array_id, c);
                        return phy::expected_throughput_mbps(
                            system.measured_snr_db(world.link_ids[link],
                                                   rng));
                    };
                const control::MultiLinkScheduler scheduler(
                    control::ControlPlaneModel::fast(), slot_ms * 1e-3);
                const control::MultiLinkOutcome outcome = scheduler.run(
                    strategy, space, eval, world.link_ids.size(),
                    control::GreedyCoordinateDescent(), 48, rng);
                eff += outcome.mean_effective_score / seeds;
                raw += outcome.mean_raw_score / seeds;
                airtime += outcome.airtime_fraction / seeds;
            }
            rows.push_back({core::fmt(slot_ms, 1),
                            control::to_string(strategy),
                            core::fmt(raw, 1), core::fmt(100.0 * airtime, 1),
                            core::fmt(eff, 1)});
        }
    }
    core::print_table(os,
                      {"slot (ms)", "strategy", "raw rate (Mb/s)",
                       "airtime (%)", "effective rate (Mb/s)"},
                      rows);
    os << "\nShape: per-link reconfiguration wins once slots are long "
          "enough to amortize the switch; at sub-millisecond slots the "
          "joint configuration wins despite its compromise channel — the "
          "paper's agility/optimization spectrum.\n\n";
}

void BM_JointSchedule(benchmark::State& state) {
    MultiLinkWorld world = make_world(100);
    util::Rng rng(8000);
    core::System& system = world.scenario.system;
    const auto space =
        system.medium().array(world.scenario.array_id).config_space();
    const control::LinkEval eval = [&](std::size_t link,
                                       const surface::Config& c) {
        system.apply(world.scenario.array_id, c);
        return phy::expected_throughput_mbps(
            system.measured_snr_db(world.link_ids[link], rng));
    };
    const control::MultiLinkScheduler scheduler(
        control::ControlPlaneModel::fast(), 2e-3);
    for (auto _ : state) {
        auto outcome = scheduler.run(control::MultiLinkStrategy::kJoint,
                                     space, eval, world.link_ids.size(),
                                     control::RandomSearcher(), 16, rng);
        benchmark::DoNotOptimize(outcome.mean_effective_score);
    }
}
BENCHMARK(BM_JointSchedule)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
