// Machine-readable performance snapshot of the factored-cache evaluation
// path, written to BENCH_observe.json for CI trend tracking.
//
// Five per-evaluation costs are timed on the paper's fig4 and fig6
// scenes (seeds 100 and 116, non-line-of-sight):
//
//   trace    a full image-method re-trace of the scene plus CFR synthesis
//            (the cost when geometry is assumed dirty every evaluation),
//   resynth  CFR synthesis from a warm path resolve (the pre-cache
//            System::observe hot path: environment paths memoized, array
//            paths re-derived and every path re-synthesized per call),
//   cached   the legacy AoS recombination H = H_static + B.g(config)
//            through response_with (allocates its result per call),
//   soa      the same recombination through response_into into a reused
//            split-complex scratch (the batch workers' full-gather path),
//   delta    one coordinate-sweep candidate on the incremental path:
//            copy the coordinate's cached base, add the swept row.
//
// The soa and delta loops run under a global operator-new counter and the
// process FAILS (exit 1) if a steady-state candidate allocates — that is
// the zero-allocation contract, gated here rather than asserted in prose.
// A fig7 harmonization scene (4 links, general objective path) rides
// along so the fused single-link path and the Observation path are both
// tracked. Then two full greedy searches are timed end to end: the serial
// controller (actuate + measure per trial) against System::optimize_fast
// (cache + BatchEvaluator). A control-plane service sweep closes the
// run: a closed loop over control::Service measures request throughput
// and the queue-wait/compute latency split, with a deterministic
// overload burst so the reject/expiry counters the baseline gates hold
// exact values. A massive-element scene (1,024 two-state elements, the
// RFocus regime) closes the perf sections: tiled-basis gather and delta
// costs under the same allocation gate, a BatchEvaluator thread-scaling
// curve, and a greedy-vs-majority-vote search comparison (the vote
// searcher must reach >=95% of greedy's objective on <=25% of its
// evaluations). A multi-user fig-harmonization scene (32 links, 4 APs,
// one shared element field) times the MultiLinkCache's wide group
// gathers against 32 naive per-link reads under the same allocation
// gate, and runs two optimize_multilink max-min fairness searches end
// to end. A wideband scene (Wi-Fi 6E 160 MHz / Wi-Fi 7 320 MHz, 996 and
// 1960 used tones under a punctured RU mask) times the tone-axis regime:
// full vs tile-bounded masked gathers and deltas, planned FFT execution,
// and the per-TONE cost acceptance gate (growing the tone axis 19-38x
// may not regress the per-tone incremental-candidate cost past the
// 52-tone fig4 scene's). Timings are informational; the allocation
// gate, the per-tone gate and the service's no-silent-drops ledger fail
// the run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "control/batch.hpp"
#include "control/controller.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/scratch.hpp"
#include "control/search.hpp"
#include "control/service.hpp"
#include "core/link_cache.hpp"
#include "core/scenarios.hpp"
#include "core/serve.hpp"
#include "core/system.hpp"
#include "em/channel.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "phy/chanest.hpp"
#include "phy/ofdm.hpp"
#include "phy/ru.hpp"
#include "util/fft_plan.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

// ------------------------------------------------------------------
// Global allocation counter: every operator-new form funnels through
// malloc here and bumps one relaxed atomic, so a timed loop can assert
// it allocated nothing. Deletes are free-and-forget (no counting needed;
// an allocation on the hot path is the defect, matching frees included).
// ------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size ? size : 1))
        return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
    return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}

namespace {

using namespace press;
using Clock = std::chrono::steady_clock;

std::uint64_t allocations() {
    return g_allocations.load(std::memory_order_relaxed);
}

double elapsed_us(Clock::time_point t0, Clock::time_point t1,
                  std::size_t iterations) {
    return std::chrono::duration<double, std::micro>(t1 - t0).count() /
           static_cast<double>(iterations);
}

struct SceneSnapshot {
    std::string name;
    std::uint64_t seed = 0;
    double trace_eval_us = 0.0;
    double resynth_eval_us = 0.0;
    double cached_eval_us = 0.0;
    double cached_eval_off_us = 0.0;  ///< same loop, telemetry disabled
    double soa_eval_us = 0.0;    ///< response_into, reused scratch
    double delta_eval_us = 0.0;  ///< cached base copy + one row-add
    std::uint64_t sweep_allocs = 0;  ///< heap allocs in the gated loops
    double telemetry_overhead_pct = 0.0;
    double search_serial_ms = 0.0;
    double search_batched_ms = 0.0;
    std::size_t search_serial_evals = 0;
    std::size_t search_batched_evals = 0;
};

SceneSnapshot snapshot_scene(const std::string& name, std::uint64_t seed) {
    SceneSnapshot snap;
    snap.name = name;
    snap.seed = seed;

    core::LinkScenario scenario =
        core::make_link_scenario(seed, /*line_of_sight=*/false);
    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const std::vector<double> freqs = medium.ofdm().used_frequencies_hz();
    const double carrier = medium.ofdm().carrier_hz();
    const surface::Array& array = medium.array(scenario.array_id);

    constexpr std::size_t kTraceIters = 200;
    constexpr std::size_t kEvalIters = 2000;

    {   // Full re-trace per evaluation.
        auto t0 = Clock::now();
        for (std::size_t i = 0; i < kTraceIters; ++i) {
            std::vector<em::Path> paths =
                medium.environment().trace(link.tx, link.rx, carrier);
            const std::vector<em::Path> extra =
                array.paths(medium.environment(), link.tx, link.rx,
                            carrier);
            paths.insert(paths.end(), extra.begin(), extra.end());
            volatile double sink =
                em::frequency_response(paths, freqs)[0].real();
            (void)sink;
        }
        snap.trace_eval_us = elapsed_us(t0, Clock::now(), kTraceIters);
    }

    {   // Warm path resolve, fresh synthesis per evaluation.
        (void)medium.resolve_paths(link);  // warm the environment memo
        auto t0 = Clock::now();
        for (std::size_t i = 0; i < kTraceIters; ++i) {
            volatile double sink =
                em::frequency_response(medium.resolve_paths(link), freqs)[0]
                    .real();
            (void)sink;
        }
        snap.resynth_eval_us = elapsed_us(t0, Clock::now(), kTraceIters);
    }

    {   // Factored-cache recombination per evaluation, timed with the
        // telemetry instrumentation both off and on. The cached read path
        // itself is instrumentation-free by design; what "on" adds is the
        // batch-granularity hit fold optimize_fast performs (one relaxed
        // add per kFoldBatch reads), so the on/off delta is the real
        // overhead a telemetry-enabled search pays on this path.
        core::LinkCache cache;
        cache.warm(medium, scenario.link_id, link);
        const surface::ConfigSpace space = array.config_space();
        constexpr std::size_t kFoldBatch = 64;
        constexpr std::size_t kOverheadIters = 20000;
        const auto run = [&](bool telemetry_on, std::size_t iters) {
            obs::set_enabled(telemetry_on);
            auto t0 = Clock::now();
            for (std::size_t i = 0; i < iters; ++i) {
                volatile double sink =
                    cache
                        .response_with(medium, scenario.link_id, link,
                                       scenario.array_id,
                                       space.at(i % space.size()))[0]
                        .real();
                (void)sink;
                if (telemetry_on && (i + 1) % kFoldBatch == 0)
                    cache.note_batch_hits(kFoldBatch);
            }
            return elapsed_us(t0, Clock::now(), iters);
        };
        (void)run(false, kEvalIters);  // warm both code paths
        (void)run(true, kEvalIters);
        // A ~0.2 us/call loop is at the mercy of scheduler noise, so the
        // overhead comparison interleaves the two variants and keeps each
        // one's best (least-disturbed) time.
        double off_us = run(false, kOverheadIters);
        double on_us = run(true, kOverheadIters);
        for (int rep = 0; rep < 2; ++rep) {
            off_us = std::min(off_us, run(false, kOverheadIters));
            on_us = std::min(on_us, run(true, kOverheadIters));
        }
        snap.cached_eval_off_us = off_us;
        snap.cached_eval_us = on_us;
        snap.telemetry_overhead_pct = (on_us - off_us) / off_us * 100.0;
    }

    {   // The batch workers' actual per-candidate costs, run under the
        // allocation gate: full SoA gather into reused scratch, then the
        // incremental coordinate-delta form (copy the cached base, add
        // the swept row). Candidate configs are pre-expanded so the gate
        // sees only the scoring arithmetic, not ConfigSpace::at().
        core::LinkCache cache;
        cache.warm(medium, scenario.link_id, link);
        const surface::ConfigSpace space = array.config_space();
        constexpr std::size_t kConfigCycle = 64;
        std::vector<surface::Config> configs;
        configs.reserve(kConfigCycle);
        for (std::size_t i = 0; i < kConfigCycle; ++i)
            configs.push_back(space.at(i % space.size()));

        util::kernels::SplitVec h;
        cache.response_into(medium, scenario.link_id, link,
                            scenario.array_id, configs[0], h);
        std::uint64_t armed = allocations();
        auto t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            cache.response_into(medium, scenario.link_id, link,
                                scenario.array_id,
                                configs[i % kConfigCycle], h);
            volatile double sink = h.re[0];
            (void)sink;
        }
        snap.soa_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;

        util::kernels::SplitVec base, cand;
        cache.response_base_into(medium, scenario.link_id, link,
                                 scenario.array_id, configs[0],
                                 /*element=*/0, base);
        cand.resize(base.size());
        const int radix = space.radices()[0];
        armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            util::kernels::copy(util::kernels::active(), base.re.data(),
                                base.im.data(), cand.re.data(),
                                cand.im.data(), base.size());
            cache.accumulate_element_row(scenario.link_id,
                                         scenario.array_id, /*element=*/0,
                                         static_cast<int>(i % radix), cand);
            volatile double sink = cand.re[0];
            (void)sink;
        }
        snap.delta_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;
    }

    // End-to-end greedy searches under the same simulated budget.
    const control::MinSnrObjective objective(0);
    const control::GreedyCoordinateDescent searcher;
    const double budget_s = 2.0;
    {
        // The pre-cache hot path: every trial actuates the array and
        // re-synthesizes each link's CFR from a fresh path resolve.
        core::LinkScenario fresh = core::make_link_scenario(seed, false);
        core::System& system = fresh.system;
        util::Rng rng(9000 + seed);
        control::Controller controller(
            control::ControlPlaneModel::fast(),
            [&](const surface::Config& c) {
                system.apply(fresh.array_id, c);
                return true;
            },
            [&]() {
                control::Observation obs;
                for (std::size_t i = 0; i < system.num_links(); ++i)
                    obs.link_snr_db.push_back(
                        system.medium()
                            .sound(system.link(i),
                                   system.sounding_repeats(), rng)
                            .snr_db());
                return obs;
            },
            system.num_links(), system.medium().ofdm().num_used());
        const surface::ConfigSpace space =
            system.medium().array(fresh.array_id).config_space();
        auto t0 = Clock::now();
        const auto outcome = controller.optimize(space, objective,
                                                 searcher, budget_s, rng);
        snap.search_serial_ms =
            elapsed_us(t0, Clock::now(), 1) / 1000.0;
        snap.search_serial_evals = outcome.search.evaluations;
    }
    {
        core::LinkScenario fresh = core::make_link_scenario(seed, false);
        util::Rng rng(9000 + seed);
        auto t0 = Clock::now();
        const auto outcome = fresh.system.optimize_fast(
            fresh.array_id, objective, searcher,
            control::ControlPlaneModel::fast(), budget_s, rng);
        snap.search_batched_ms =
            elapsed_us(t0, Clock::now(), 1) / 1000.0;
        snap.search_batched_evals = outcome.search.evaluations;
    }
    return snap;
}

// The fig7 harmonization scene exercises the path the fused single-link
// shortcut cannot take: four links scored through a full Observation.
// Timed per candidate: 4 x (response_into + sounding draws + LTF
// combining + SNR span), all into one reused EvalScratch, under the same
// allocation gate as the single-link sweeps.
struct Fig7Snapshot {
    double general_eval_us = 0.0;
    std::uint64_t sweep_allocs = 0;
    double search_batched_ms = 0.0;
    std::size_t search_batched_evals = 0;
};

Fig7Snapshot snapshot_fig7(std::uint64_t seed) {
    Fig7Snapshot snap;
    core::HarmonizationScenario scenario =
        core::make_harmonization_scenario(seed);
    const core::System& system = scenario.system;
    const sdr::Medium& medium = system.medium();
    const std::size_t num_links = system.num_links();
    const std::size_t n = medium.ofdm().num_used();
    const std::size_t repeats = system.sounding_repeats();
    const surface::Array& array = medium.array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();

    core::LinkCache cache;
    std::vector<double> link_noise(num_links);
    for (std::size_t i = 0; i < num_links; ++i) {
        cache.warm(medium, i, system.link(i));
        link_noise[i] = medium.estimate_noise_variance(system.link(i));
    }

    constexpr std::size_t kEvalIters = 500;
    constexpr std::size_t kConfigCycle = 64;
    std::vector<surface::Config> configs;
    configs.reserve(kConfigCycle);
    for (std::size_t i = 0; i < kConfigCycle; ++i)
        configs.push_back(space.at(i % space.size()));

    util::Rng rng(4200 + seed);
    control::EvalScratch s;
    const util::kernels::Dispatch d = util::kernels::active();
    const auto score_candidate = [&](const surface::Config& c) {
        double acc = 0.0;
        for (std::size_t i = 0; i < num_links; ++i) {
            cache.response_into(medium, i, system.link(i),
                                scenario.array_id, c, s.h);
            s.resize_tracked(s.raw_re, repeats * n);
            s.resize_tracked(s.raw_im, repeats * n);
            s.resize_tracked(s.mean_re, n);
            s.resize_tracked(s.mean_im, n);
            s.resize_tracked(s.noise_var, n);
            s.resize_tracked(s.snr_db, n);
            for (std::size_t r = 0; r < repeats; ++r)
                for (std::size_t k = 0; k < n; ++k) {
                    const std::complex<double> w =
                        rng.complex_gaussian(link_noise[i]);
                    s.raw_re[r * n + k] = s.h.re[k] + w.real();
                    s.raw_im[r * n + k] = s.h.im[k] + w.imag();
                }
            util::kernels::ltf_mean_var(d, s.raw_re.data(), s.raw_im.data(),
                                        repeats, n, s.mean_re.data(),
                                        s.mean_im.data(),
                                        s.noise_var.data());
            util::kernels::snr_db_into(d, s.mean_re.data(), s.mean_im.data(),
                                       s.noise_var.data(), n,
                                       phy::kSnrCapDb, phy::kSnrFloorDb,
                                       s.snr_db.data());
            acc += util::kernels::mean(d, s.snr_db.data(), n);
        }
        return acc;
    };
    (void)score_candidate(configs[0]);  // warm every scratch buffer
    const std::uint64_t armed = allocations();
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < kEvalIters; ++i) {
        volatile double sink = score_candidate(configs[i % kConfigCycle]);
        (void)sink;
    }
    snap.general_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
    snap.sweep_allocs = allocations() - armed;

    {   // End-to-end batched harmonization search (general objective
        // path: no fused spec, four links per candidate).
        core::HarmonizationScenario fresh =
            core::make_harmonization_scenario(seed);
        const std::unique_ptr<control::Objective> objective =
            control::make_harmonization_objective(
                fresh.system.medium().ofdm().num_used(),
                /*interference_links=*/true);
        const control::GreedyCoordinateDescent searcher;
        util::Rng srng(9000 + seed);
        auto st0 = Clock::now();
        const auto outcome = fresh.system.optimize_fast(
            fresh.array_id, *objective, searcher,
            control::ControlPlaneModel::fast(), /*budget_s=*/1.0, srng);
        snap.search_batched_ms = elapsed_us(st0, Clock::now(), 1) / 1000.0;
        snap.search_batched_evals = outcome.search.evaluations;
    }
    return snap;
}

// Approximate percentile from fixed histogram buckets: the upper bound of
// the bucket where the cumulative count crosses q (overflow observations
// saturate at the last explicit bound).
double approx_percentile_us(
    const press::obs::MetricsRegistry::Snapshot::HistogramData& h,
    double q) {
    if (h.count == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(h.count) + 0.5);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        if (cumulative >= target)
            return i < h.bounds.size() ? h.bounds[i] : h.bounds.back();
    }
    return h.bounds.back();
}

// Control-plane service throughput: a closed-loop sweep over
// control::Service running the real engine (core::make_service_engine,
// no chaos), plus a deterministic overload burst so the reject and
// expiry counters land in the baseline with exact expected values.
// Request latency percentiles come from the service.request_us histogram
// the service populates; throughput is wall-clock and informational.
struct ServiceSnapshot {
    double wall_s = 0.0;
    double requests_per_s = 0.0;
    std::uint64_t admitted = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    double request_p50_us = 0.0;
    double request_p99_us = 0.0;
    double queue_wait_p99_us = 0.0;
    bool balanced = false;
};

ServiceSnapshot snapshot_service(std::uint64_t seed) {
    using control::Service;
    ServiceSnapshot snap;
    core::LinkScenario scenario = core::make_link_scenario(seed, false);

    control::ServiceOptions options;
    options.queue_capacity = 16;
    options.default_budget_s = 0.002;  // short sim budget per cycle
    options.default_deadline_s = 10.0;
    Service service(core::make_service_engine(scenario.system), options);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kRequests = 256;
    std::uint32_t seq = 1;
    std::vector<Service::SessionId> ids;
    for (std::size_t c = 0; c < kClients; ++c) {
        const Service::SessionId id = service.connect();
        service.submit(id, control::encode(control::Hello{}, seq++));
        (void)service.take_outgoing(id);  // HelloAck
        ids.push_back(id);
    }

    control::OptimizeRequest req;
    req.array_id = static_cast<std::uint16_t>(scenario.array_id);
    req.link_id = static_cast<std::uint16_t>(scenario.link_id);
    req.budget_us = 2000;

    // Closed loop: every client keeps exactly one request outstanding
    // until kRequests have been issued; each tick runs one cycle.
    std::vector<bool> outstanding(kClients, false);
    std::size_t issued = 0, completed = 0;
    auto t0 = Clock::now();
    while (completed < kRequests) {
        for (std::size_t c = 0; c < kClients; ++c) {
            if (outstanding[c] || issued >= kRequests) continue;
            service.submit(ids[c], control::encode(req, seq++));
            outstanding[c] = true;
            ++issued;
        }
        service.run_cycle();
        service.advance_clock(1e-4);
        for (std::size_t c = 0; c < kClients; ++c) {
            for (const auto& frame : service.take_outgoing(ids[c])) {
                const control::Decoded reply = control::decode(frame);
                if (std::holds_alternative<control::OptimizeReply>(
                        reply.message) ||
                    std::holds_alternative<control::Reject>(reply.message)) {
                    outstanding[c] = false;
                    ++completed;
                }
            }
        }
    }
    snap.wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    snap.requests_per_s =
        static_cast<double>(completed) / std::max(snap.wall_s, 1e-9);

    // Deterministic overload burst: one session floods the queue with
    // equal-priority requests (8 past capacity -> 8 kQueueFull rejects),
    // then the clock jumps past their tight deadlines so every resident
    // expires in-queue. The burst pins the reject/expire counters the
    // baseline gates to exact values.
    const Service::SessionId burst = service.connect();
    service.submit(burst, control::encode(control::Hello{}, seq++));
    control::OptimizeRequest tight = req;
    tight.deadline_us = 100;
    for (std::size_t i = 0; i < options.queue_capacity + 8; ++i)
        service.submit(burst, control::encode(tight, seq++));
    service.advance_clock(1.0);
    (void)service.run_until_idle();
    (void)service.take_outgoing(burst);

    const Service::Stats& stats = service.stats();
    snap.admitted = stats.admitted;
    snap.served = stats.served;
    snap.rejected = stats.rejected;
    snap.expired = stats.expired;
    snap.balanced = service.accounting_balanced();

    const auto metrics = press::obs::MetricsRegistry::global().snapshot();
    for (const auto& h : metrics.histograms) {
        if (h.name == "service.request_us") {
            snap.request_p50_us = approx_percentile_us(h, 0.50);
            snap.request_p99_us = approx_percentile_us(h, 0.99);
        } else if (h.name == "service.queue_wait_us") {
            snap.queue_wait_p99_us = approx_percentile_us(h, 0.99);
        }
    }
    return snap;
}

// Introspection-plane cost and correctness. The closed-loop service
// sweep above runs twice more — telemetry sampler off with no
// subscriber, then sampler on with a live in-proc subscriber whose
// frames are drained, decoded and schema-validated every tick (that
// parse cost is the honest cost of watching, so it is timed with the
// sweep). Throughput for each mode is the best of three interleaved
// runs, the same de-noising the scene-level telemetry overhead uses.
// Afterwards a deadline-miss burst on a subscribed service must raise
// the SLO burn alarm, stream a nonzero service.slo.burn_rate series and
// deliver a FlightTap frame, and a warmed Timeseries::sample() sweep
// runs under the operator-new counter — all hard gates in main().
struct IntrospectionSnapshot {
    double unsub_requests_per_s = 0.0;
    double sub_requests_per_s = 0.0;
    double overhead_pct = 0.0;         ///< attributed plane cost, % of sweep
    double paired_delta_pct = 0.0;     ///< raw A/B median (noisy, FYI only)
    double sample_us = 0.0;            ///< one registry sweep
    double frame_us = 0.0;             ///< build+wire+parse one frame
    std::uint64_t frames = 0;          ///< telemetry frames decoded live
    std::uint64_t exemplars = 0;       ///< exemplars across those frames
    std::uint64_t invalid_frames = 0;  ///< schema violations (gate: 0)
    std::uint64_t samples = 0;         ///< sampler windows, subscribed runs
    std::uint64_t frames_dropped = 0;  ///< drop-oldest casualties (0 here)
    std::uint64_t slo_alarms = 0;      ///< burn alarms from the burst
    std::uint64_t taps = 0;            ///< FlightTap frames received
    std::uint64_t burn_series = 0;     ///< streamed windows with burn > 0
    double burn_peak = 0.0;            ///< max streamed burn rate
    std::uint64_t sample_allocs = 0;   ///< operator-new in sample() sweep
    bool balanced = false;
};

IntrospectionSnapshot snapshot_introspection(std::uint64_t seed) {
    using control::Service;
    IntrospectionSnapshot snap;
    snap.balanced = true;

    struct Pass {
        double wall_s = 0.0;
        double service_s = 0.0;  ///< service-clock time the sweep covered
        std::uint64_t frames = 0;
        std::uint64_t exemplars = 0;
        std::uint64_t invalid = 0;
        std::uint64_t samples = 0;
        std::uint64_t dropped = 0;
        bool balanced = false;
    };
    auto run_pass = [&](bool subscribed) {
        Pass pass;
        core::LinkScenario scenario = core::make_link_scenario(seed, false);
        control::ServiceOptions options;
        options.queue_capacity = 16;
        options.default_budget_s = 0.002;
        options.default_deadline_s = 10.0;
        // 0.1 s of service-clock time per window: 5x pressd's default
        // cadence, so the measured overhead bounds real deployments.
        options.telemetry.interval_s = subscribed ? 0.1 : 0.0;
        Service service(core::make_service_engine(scenario.system), options);

        constexpr std::size_t kClients = 4;
        constexpr std::size_t kRequests = 256;
        std::uint32_t seq = 1;
        std::vector<Service::SessionId> ids;
        for (std::size_t c = 0; c < kClients; ++c) {
            const Service::SessionId id = service.connect();
            service.submit(id, control::encode(control::Hello{}, seq++));
            (void)service.take_outgoing(id);  // HelloAck
            ids.push_back(id);
        }
        Service::SessionId watcher{};
        if (subscribed) {
            watcher = service.connect();
            service.submit(watcher, control::encode(control::Hello{}, seq++));
            (void)service.take_outgoing(watcher);
            control::Subscribe sub;
            sub.interval_us = 100000;  // a push per 0.1 s of service time
            service.submit(watcher, control::encode(sub, seq++));
        }
        auto drain_watcher = [&] {
            if (!subscribed) return;
            for (const auto& frame : service.take_outgoing(watcher)) {
                const control::Decoded reply = control::decode(frame);
                const auto* tf =
                    std::get_if<control::TelemetryFrame>(&reply.message);
                if (tf == nullptr) continue;
                ++pass.frames;
                try {
                    const obs::Json doc = obs::Json::parse(tf->payload);
                    if (!obs::validate_timeseries(doc).empty())
                        ++pass.invalid;
                    else if (doc.contains("exemplars"))
                        pass.exemplars +=
                            doc.at("exemplars").as_array().size();
                } catch (const std::exception&) {
                    ++pass.invalid;
                }
            }
        };

        control::OptimizeRequest req;
        req.array_id = static_cast<std::uint16_t>(scenario.array_id);
        req.link_id = static_cast<std::uint16_t>(scenario.link_id);
        req.budget_us = 2000;
        std::vector<bool> outstanding(kClients, false);
        std::size_t issued = 0, completed = 0;
        auto t0 = Clock::now();
        while (completed < kRequests) {
            for (std::size_t c = 0; c < kClients; ++c) {
                if (outstanding[c] || issued >= kRequests) continue;
                service.submit(ids[c], control::encode(req, seq++));
                outstanding[c] = true;
                ++issued;
            }
            service.run_cycle();
            service.advance_clock(1e-4);
            for (std::size_t c = 0; c < kClients; ++c) {
                for (const auto& frame : service.take_outgoing(ids[c])) {
                    const control::Decoded reply = control::decode(frame);
                    if (std::holds_alternative<control::OptimizeReply>(
                            reply.message) ||
                        std::holds_alternative<control::Reject>(
                            reply.message)) {
                        outstanding[c] = false;
                        ++completed;
                    }
                }
            }
            drain_watcher();
        }
        pass.wall_s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        (void)service.run_until_idle();
        drain_watcher();
        pass.service_s = service.uptime_s();
        pass.samples = service.stats().telemetry_samples;
        pass.dropped = service.stats().telemetry_frames_dropped;
        pass.balanced = service.accounting_balanced();
        return pass;
    };

    // Paired reps: each rep times both modes back to back, so machine
    // drift cancels in the per-rep ratio; the median ratio is the
    // overhead estimate (robust to one noisy rep either way), while the
    // reported throughputs are the best-of-reps informational numbers.
    constexpr std::size_t kRequests = 256;
    constexpr int kReps = 5;
    double best_unsub_s = std::numeric_limits<double>::infinity();
    double best_sub_s = std::numeric_limits<double>::infinity();
    double sub_service_s = 0.0;
    std::vector<double> ratios;
    for (int rep = 0; rep < kReps; ++rep) {
        // Alternate which mode goes first so slow drift (turbo decay,
        // a neighbor landing on the core) biases neither mode.
        Pass unsub, sub;
        if (rep % 2 == 0) {
            unsub = run_pass(false);
            sub = run_pass(true);
        } else {
            sub = run_pass(true);
            unsub = run_pass(false);
        }
        best_unsub_s = std::min(best_unsub_s, unsub.wall_s);
        best_sub_s = std::min(best_sub_s, sub.wall_s);
        sub_service_s += sub.service_s;
        ratios.push_back(sub.wall_s / std::max(unsub.wall_s, 1e-9));
        snap.frames += sub.frames;
        snap.exemplars += sub.exemplars;
        snap.invalid_frames += unsub.invalid + sub.invalid;
        snap.samples += sub.samples;
        snap.frames_dropped += sub.dropped;
        snap.balanced = snap.balanced && unsub.balanced && sub.balanced;
    }
    std::sort(ratios.begin(), ratios.end());
    snap.unsub_requests_per_s =
        static_cast<double>(kRequests) / std::max(best_unsub_s, 1e-9);
    snap.sub_requests_per_s =
        static_cast<double>(kRequests) / std::max(best_sub_s, 1e-9);
    snap.paired_delta_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;

    // Deadline-miss burst against a subscribed session: every resident
    // request expires in-queue, the burn rate crosses the alarm, and the
    // subscriber must see both the flight tap and a burn-rate series.
    {
        core::LinkScenario scenario = core::make_link_scenario(seed, false);
        control::ServiceOptions options;
        options.queue_capacity = 16;
        options.default_budget_s = 0.002;
        options.telemetry.interval_s = 0.02;
        Service service(core::make_service_engine(scenario.system), options);
        std::uint32_t seq = 1;
        const Service::SessionId watcher = service.connect();
        service.submit(watcher, control::encode(control::Hello{}, seq++));
        control::Subscribe sub;
        sub.interval_us = 20000;
        service.submit(watcher, control::encode(sub, seq++));
        (void)service.take_outgoing(watcher);  // HelloAck + subscribe ack

        const Service::SessionId burst = service.connect();
        service.submit(burst, control::encode(control::Hello{}, seq++));
        control::OptimizeRequest tight;
        tight.array_id = static_cast<std::uint16_t>(scenario.array_id);
        tight.link_id = static_cast<std::uint16_t>(scenario.link_id);
        tight.budget_us = 2000;
        tight.deadline_us = 100;
        for (std::size_t i = 0; i < options.queue_capacity + 8; ++i)
            service.submit(burst, control::encode(tight, seq++));
        service.advance_clock(1.0);
        (void)service.run_until_idle();
        // Let the sampler close a few more windows while the misses are
        // still inside the SLO window: a burn series, not a single point.
        for (int i = 0; i < 8; ++i) {
            service.advance_clock(0.05);
            (void)service.run_cycle();
        }
        for (const auto& frame : service.take_outgoing(watcher)) {
            const control::Decoded reply = control::decode(frame);
            if (const auto* tf =
                    std::get_if<control::TelemetryFrame>(&reply.message)) {
                try {
                    const obs::Json doc = obs::Json::parse(tf->payload);
                    if (!obs::validate_timeseries(doc).empty()) {
                        ++snap.invalid_frames;
                        continue;
                    }
                    if (!doc.contains("gauges")) continue;
                    const obs::Json& gauges = doc.at("gauges");
                    if (!gauges.contains("service.slo.burn_rate")) continue;
                    const double burn =
                        gauges.at("service.slo.burn_rate").as_double();
                    if (burn > 0.0) {
                        ++snap.burn_series;
                        snap.burn_peak = std::max(snap.burn_peak, burn);
                    }
                } catch (const std::exception&) {
                    ++snap.invalid_frames;
                }
            } else if (const auto* tap =
                           std::get_if<control::FlightTap>(&reply.message)) {
                if (tap->reason ==
                    static_cast<std::uint8_t>(
                        control::FlightTapReason::kSloBurn))
                    ++snap.taps;
            }
        }
        snap.slo_alarms = service.stats().slo_alarms;
        snap.balanced = snap.balanced && service.accounting_balanced();
    }

    // Zero-allocation contract on the sampling hot path: a warmed
    // Timeseries may not allocate in sample() or note_exemplar(). (The
    // service's SLO gauge publication sits outside this contract — it
    // builds metric names — so the gate covers exactly the per-window
    // registry sweep that runs at every sampler tick.) The same loop is
    // timed, and a second loop prices one full frame round trip (render,
    // dump, encode, decode, parse, validate) — together they attribute
    // the introspection plane's cost deterministically, which is what
    // the overhead gate uses: on a loaded CI box the raw A/B wall-clock
    // delta above drowns a ~1% effect in multi-percent scheduler noise.
    {
        obs::TimeseriesOptions topt;
        topt.interval_s = 0.02;
        obs::Timeseries ts(topt);
        ts.refresh();
        double now = 0.0;
        for (int i = 0; i < 4; ++i) ts.sample(now += topt.interval_s);
        const std::uint64_t armed = allocations();
        auto t0 = Clock::now();
        constexpr int kSamples = 256;
        for (int i = 0; i < kSamples; ++i) {
            ts.note_exemplar(123.0 + i, 0x9E3779B97F4A7C15ull * (i + 1),
                             now);
            ts.sample(now += topt.interval_s);
        }
        snap.sample_us = elapsed_us(t0, Clock::now(), kSamples);
        snap.sample_allocs = allocations() - armed;

        constexpr int kFrames = 64;
        t0 = Clock::now();
        for (int i = 0; i < kFrames; ++i) {
            control::TelemetryFrame tf;
            tf.revision = ts.revision();
            tf.payload = ts.latest_frame(std::string(), true).dump();
            const auto wire = control::encode(control::Message{tf},
                                              static_cast<std::uint32_t>(i));
            const control::Decoded rx = control::decode(wire);
            const auto* got =
                std::get_if<control::TelemetryFrame>(&rx.message);
            if (got == nullptr ||
                !obs::validate_timeseries(obs::Json::parse(got->payload))
                     .empty())
                ++snap.invalid_frames;
        }
        snap.frame_us = elapsed_us(t0, Clock::now(), kFrames);
    }
    // Attributed overhead, per second of service-clock time: the sampler
    // and push cadences are service-clock rates, and a deployed pressd
    // maps wall time onto the service clock 1:1, so what a deployment
    // pays is (windows per service-second) x (unit cost). The sweep's
    // closed loop advances the service clock ~13x faster than wall (a
    // 2 ms optimize budget costs ~0.16 ms of wall compute), so dividing
    // by the loop's wall time instead would charge the plane for a
    // cadence 13x denser than any wall-clocked deployment runs at.
    snap.overhead_pct =
        (static_cast<double>(snap.samples) * snap.sample_us +
         static_cast<double>(snap.frames) * snap.frame_us) /
        std::max(sub_service_s * 1e6, 1e-9) * 100.0;
    return snap;
}

// Massive-element scene (tentpole of the RFocus-regime scaling work):
// 1,024 two-state elements on a wall panel. The config space holds 2^1024
// points, so nothing here may call ConfigSpace::at()/size() — candidate
// configs are drawn element-wise from a seeded rng. Reported: scene build
// and cache-warm wall time, the blocked-SoA basis footprint, per-eval
// gather/delta costs under the allocation gate, a BatchEvaluator
// thread-scaling curve (efficiency is speedup over min(T, hardware
// threads): the honest ideal on any box, the strict T-fold meaning on a
// CI runner with >= 8 cores), and greedy-vs-majority-vote quality at a
// 4:1 evaluation-budget handicap.
struct MassiveSnapshot {
    std::size_t n_elements = 0;
    std::uint64_t seed = 0;
    double build_ms = 0.0;      ///< make_massive_scenario wall time
    double warm_ms = 0.0;       ///< LinkCache::warm (trace + basis build)
    std::size_t basis_rows = 0;
    std::size_t basis_row_stride = 0;
    double basis_mib = 0.0;
    double soa_eval_us = 0.0;   ///< full tiled gather, n rows
    double delta_eval_us = 0.0; ///< coordinate delta: base copy + one row
    std::uint64_t sweep_allocs = 0;
    std::size_t hardware_threads = 0;
    struct ThreadPoint {
        std::size_t threads = 0;
        double eval_us = 0.0;
        double speedup = 0.0;     ///< vs the 1-thread point
        double efficiency = 0.0;  ///< speedup / min(threads, hardware)
    };
    std::vector<ThreadPoint> scaling;
    double greedy_ms = 0.0;
    std::size_t greedy_evals = 0;
    double greedy_score = 0.0;    ///< best_score_remeasured, min-SNR dB
    double majority_ms = 0.0;
    std::size_t majority_evals = 0;
    double majority_score = 0.0;
    double score_fraction = 0.0;  ///< majority / greedy objective
    double eval_fraction = 0.0;   ///< majority / greedy evaluations
};

MassiveSnapshot snapshot_massive(std::size_t n, std::uint64_t seed) {
    MassiveSnapshot snap;
    snap.n_elements = n;
    snap.seed = seed;

    auto t0 = Clock::now();
    core::LinkScenario scenario = core::make_massive_scenario(n, seed);
    snap.build_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;

    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::Array& array = medium.array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const std::vector<int>& radices = space.radices();

    core::LinkCache cache;
    t0 = Clock::now();
    cache.warm(medium, scenario.link_id, link);
    snap.warm_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
    const core::LinkCache::BasisLayout layout =
        cache.basis_layout(scenario.link_id, scenario.array_id);
    snap.basis_rows = layout.rows;
    snap.basis_row_stride = layout.row_stride;
    snap.basis_mib =
        static_cast<double>(layout.bytes) / (1024.0 * 1024.0);

    // Candidate configs drawn element-wise (2^n space: no enumeration).
    util::Rng cfg_rng(1234 + seed);
    const auto random_config = [&]() {
        surface::Config c(n);
        for (std::size_t e = 0; e < n; ++e)
            c[e] = static_cast<int>(cfg_rng.uniform_int(0, radices[e] - 1));
        return c;
    };
    constexpr std::size_t kConfigCycle = 32;
    std::vector<surface::Config> configs;
    configs.reserve(kConfigCycle);
    for (std::size_t i = 0; i < kConfigCycle; ++i)
        configs.push_back(random_config());

    {   // Full tiled-SoA gather per evaluation, allocation-gated.
        constexpr std::size_t kSoaIters = 300;
        util::kernels::SplitVec h;
        cache.response_into(medium, scenario.link_id, link,
                            scenario.array_id, configs[0], h);
        std::uint64_t armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kSoaIters; ++i) {
            cache.response_into(medium, scenario.link_id, link,
                                scenario.array_id,
                                configs[i % kConfigCycle], h);
            volatile double sink = h.re[0];
            (void)sink;
        }
        snap.soa_eval_us = elapsed_us(t0, Clock::now(), kSoaIters);
        snap.sweep_allocs += allocations() - armed;

        // Coordinate delta: copy the cached base, add one swept row.
        constexpr std::size_t kDeltaIters = 2000;
        util::kernels::SplitVec base, cand;
        cache.response_base_into(medium, scenario.link_id, link,
                                 scenario.array_id, configs[0],
                                 /*element=*/0, base);
        cand.resize(base.size());
        const int radix = radices[0];
        armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kDeltaIters; ++i) {
            util::kernels::copy(util::kernels::active(), base.re.data(),
                                base.im.data(), cand.re.data(),
                                cand.im.data(), base.size());
            cache.accumulate_element_row(scenario.link_id,
                                         scenario.array_id, /*element=*/0,
                                         static_cast<int>(i % radix), cand);
            volatile double sink = cand.re[0];
            (void)sink;
        }
        snap.delta_eval_us = elapsed_us(t0, Clock::now(), kDeltaIters);
        snap.sweep_allocs += allocations() - armed;
    }

    {   // Thread-scaling curve: one shared candidate batch scored through
        // BatchEvaluator pools of 1/2/4/8 workers. The score is the fused
        // min-SNR shape without the noise draws (gather + min |H|^2), so
        // the curve isolates shard claiming + the bandwidth-bound gather.
        const unsigned hw = std::thread::hardware_concurrency();
        snap.hardware_threads = hw == 0 ? 1 : hw;
        constexpr std::size_t kBatch = 256;
        std::vector<surface::Config> batch;
        batch.reserve(kBatch);
        for (std::size_t i = 0; i < kBatch; ++i)
            batch.push_back(random_config());
        const auto score = [&](const surface::Config& c, util::Rng&,
                               control::EvalScratch& s) {
            cache.response_into(medium, scenario.link_id, link,
                                scenario.array_id, c, s.h);
            double worst = std::numeric_limits<double>::infinity();
            for (std::size_t k = 0; k < s.h.size(); ++k) {
                const double p =
                    s.h.re[k] * s.h.re[k] + s.h.im[k] * s.h.im[k];
                worst = std::min(worst, p);
            }
            return worst;
        };
        double one_thread_us = 0.0;
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            control::BatchEvaluator pool(score, /*seed=*/42, threads);
            (void)pool.evaluate(batch);  // warm every worker arena
            double best_us = std::numeric_limits<double>::infinity();
            for (int rep = 0; rep < 3; ++rep) {
                const auto p0 = Clock::now();
                (void)pool.evaluate(batch);
                best_us = std::min(
                    best_us, elapsed_us(p0, Clock::now(), kBatch));
            }
            MassiveSnapshot::ThreadPoint point;
            point.threads = threads;
            point.eval_us = best_us;
            if (threads == 1) one_thread_us = best_us;
            point.speedup = one_thread_us / best_us;
            point.efficiency =
                point.speedup /
                static_cast<double>(std::min<std::size_t>(
                    threads, snap.hardware_threads));
            snap.scaling.push_back(point);
        }
    }

    {   // Greedy-vs-majority under simulated budgets priced off the same
        // control-plane model optimize_fast uses: greedy gets ~4n trials,
        // majority-vote a quarter of that. The quality bar (>=95% of
        // greedy's remeasured objective at <=25% of its evaluations) is
        // asserted by tests/test_massive; here the ratio is reported for
        // trend tracking.
        const control::ControlPlaneModel plane =
            control::ControlPlaneModel::fast();
        control::SetConfig probe;
        probe.array_id = static_cast<std::uint16_t>(scenario.array_id);
        probe.config.assign(n, 0);
        const double trial_s = plane.config_trial_time_s(
            probe, /*num_links=*/1, medium.ofdm().num_used());
        const double greedy_budget_s = 4096.0 * trial_s;
        const double majority_budget_s = 1024.0 * trial_s;
        const control::MinSnrObjective objective(0);
        {
            const control::GreedyCoordinateDescent searcher;
            util::Rng rng(9100 + seed);
            t0 = Clock::now();
            const auto outcome = scenario.system.optimize_fast(
                scenario.array_id, objective, searcher, plane,
                greedy_budget_s, rng);
            snap.greedy_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
            snap.greedy_evals = outcome.search.evaluations;
            snap.greedy_score = outcome.search.best_score_remeasured;
        }
        {
            const control::MajorityVoteSearcher searcher;
            util::Rng rng(9100 + seed);
            t0 = Clock::now();
            const auto outcome = scenario.system.optimize_fast(
                scenario.array_id, objective, searcher, plane,
                majority_budget_s, rng);
            snap.majority_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
            snap.majority_evals = outcome.search.evaluations;
            snap.majority_score = outcome.search.best_score_remeasured;
        }
        snap.eval_fraction =
            snap.greedy_evals == 0
                ? 0.0
                : static_cast<double>(snap.majority_evals) /
                      static_cast<double>(snap.greedy_evals);
        // Min-SNR scores are dB and can straddle zero, so the fraction is
        // only meaningful when greedy found a positive-SNR config.
        snap.score_fraction =
            snap.greedy_score > 0.0
                ? snap.majority_score / snap.greedy_score
                : (snap.majority_score >= snap.greedy_score ? 1.0 : 0.0);
    }
    return snap;
}

// Wideband Wi-Fi 6E/7 scene (tentpole of the tone-axis scaling work):
// a 996-tone (160 MHz) or 1960-tone (320 MHz) numerology over a
// 16-element 4-phase panel, scored per-RU under a punctured mask
// (DESIGN.md §15). Four per-candidate costs ride under the allocation
// gate: the full-width SoA gather, the tile-bounded masked gather
// (response_ranges_into over the mask's tile spans), the fused
// coordinate delta (element_row_delta: candidate = base + swept row in
// one pass), and its tile-bounded form. A planned n-point FFT execution
// loop covers the FftPlan cache's zero-steady-state-allocation claim.
// The masked delta's per-TONE cost feeds the acceptance gate in main():
// what the wideband search pays per tone of the numerology — the fused
// single pass (60% of the two-step traffic) plus tile skipping (the
// bench mask punctures a >=tile-wide RU run) must buy back the
// L1-to-L2 bandwidth loss of 19-38x wider rows, landing at or below
// fig4's 52-tone copy-then-add per-tone cost. The SoA per-tone cost is
// reported but not gated: it scales with the element count (17 row
// passes here vs fig4's 4), so it is not an apples-to-apples per-tone
// figure.
struct WidebandSnapshot {
    std::string band;            ///< "wifi6e_160" / "wifi7_320"
    std::uint64_t seed = 0;
    std::size_t fft_size = 0;
    std::size_t num_used = 0;
    std::size_t active_tones = 0;   ///< mask's active tone count
    std::size_t num_spans = 0;      ///< tile spans the mask resolves to
    std::size_t covered_tones = 0;  ///< tones inside those spans
    double build_ms = 0.0;   ///< make_wideband_scenario wall time
    double warm_ms = 0.0;    ///< LinkCache::warm (trace + basis build)
    std::size_t basis_rows = 0;
    double basis_mib = 0.0;
    double soa_eval_us = 0.0;     ///< full-width response_into
    double masked_eval_us = 0.0;  ///< response_ranges_into, tile spans
    double delta_eval_us = 0.0;   ///< full-width base copy + one row-add
    double masked_delta_eval_us = 0.0;  ///< span copies + ranged row-add
    double plan_fwd_us = 0.0;     ///< planned n-point forward FFT
    double soa_per_tone_ns = 0.0;
    double delta_per_tone_ns = 0.0;
    double masked_delta_per_tone_ns = 0.0;  ///< the gated figure
    std::uint64_t sweep_allocs = 0;
    bool searched = false;  ///< end-to-end searches run (996 variant)
    double masked_search_ms = 0.0;
    std::size_t masked_search_evals = 0;
    double masked_score_db = 0.0;  ///< remeasured min-SNR, active tones
    double full_search_ms = 0.0;
    std::size_t full_search_evals = 0;
    double full_score_db = 0.0;  ///< remeasured min-SNR, all tones
};

WidebandSnapshot snapshot_wideband(const char* band,
                                   const core::WidebandParams& params,
                                   std::uint64_t seed, bool run_search) {
    WidebandSnapshot snap;
    snap.band = band;
    snap.seed = seed;

    auto t0 = Clock::now();
    core::WidebandScenario scenario =
        core::make_wideband_scenario(seed, params);
    snap.build_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;

    const sdr::Medium& medium = scenario.system.medium();
    const sdr::Link& link = scenario.system.link(scenario.link_id);
    const surface::Array& array = medium.array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const std::vector<int>& radices = space.radices();
    snap.fft_size = medium.ofdm().fft_size();
    snap.num_used = medium.ofdm().num_used();
    snap.active_tones = scenario.mask.num_active();

    // The mask's tile spans: what every masked loop below streams.
    std::vector<util::kernels::IndexRange> spans;
    for (const phy::RuRange& r :
         scenario.mask.tile_spans(core::LinkCache::kTileSubcarriers)) {
        spans.push_back({r.first, r.last - r.first});
        snap.covered_tones += r.last - r.first;
    }
    snap.num_spans = spans.size();

    core::LinkCache cache;
    t0 = Clock::now();
    cache.warm(medium, scenario.link_id, link);
    snap.warm_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
    const core::LinkCache::BasisLayout layout =
        cache.basis_layout(scenario.link_id, scenario.array_id);
    snap.basis_rows = layout.rows;
    snap.basis_mib =
        static_cast<double>(layout.bytes) / (1024.0 * 1024.0);

    // Candidate configs drawn element-wise (the 4^16 space is enumerable
    // but the massive idiom keeps the gate off ConfigSpace::at()).
    util::Rng cfg_rng(1234 + seed);
    const std::size_t n_elements = space.num_elements();
    const auto random_config = [&]() {
        surface::Config c(n_elements);
        for (std::size_t e = 0; e < n_elements; ++e)
            c[e] = static_cast<int>(cfg_rng.uniform_int(0, radices[e] - 1));
        return c;
    };
    constexpr std::size_t kConfigCycle = 32;
    std::vector<surface::Config> configs;
    configs.reserve(kConfigCycle);
    for (std::size_t i = 0; i < kConfigCycle; ++i)
        configs.push_back(random_config());

    constexpr std::size_t kEvalIters = 2000;
    {   // Full-width SoA gather vs the tile-bounded masked gather.
        util::kernels::SplitVec h;
        cache.response_into(medium, scenario.link_id, link,
                            scenario.array_id, configs[0], h);
        std::uint64_t armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            cache.response_into(medium, scenario.link_id, link,
                                scenario.array_id,
                                configs[i % kConfigCycle], h);
            volatile double sink = h.re[0];
            (void)sink;
        }
        snap.soa_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;

        util::kernels::SplitVec hm;
        cache.response_ranges_into(medium, scenario.link_id, link,
                                   scenario.array_id, configs[0],
                                   spans.data(), spans.size(), hm);
        armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            cache.response_ranges_into(medium, scenario.link_id, link,
                                       scenario.array_id,
                                       configs[i % kConfigCycle],
                                       spans.data(), spans.size(), hm);
            volatile double sink = hm.re[spans[0].offset];
            (void)sink;
        }
        snap.masked_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;
    }

    {   // Coordinate delta through the fused wideband machinery
        // (candidate = base + swept row in one pass), full-width and
        // tile-bounded. Bit-identical to the narrowband scenes'
        // copy-then-add loops at 60% of the memory traffic — the figure
        // that matters once the split vectors fall out of L1.
        util::kernels::SplitVec base, cand;
        cache.response_base_into(medium, scenario.link_id, link,
                                 scenario.array_id, configs[0],
                                 /*element=*/0, base);
        cand.resize(base.size());
        const int radix = radices[0];
        std::uint64_t armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            cache.element_row_delta(scenario.link_id, scenario.array_id,
                                    /*element=*/0,
                                    static_cast<int>(i % radix), base,
                                    cand);
            volatile double sink = cand.re[0];
            (void)sink;
        }
        snap.delta_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;

        util::kernels::SplitVec mbase, mcand;
        cache.response_base_ranges_into(medium, scenario.link_id, link,
                                        scenario.array_id, configs[0],
                                        /*element=*/0, spans.data(),
                                        spans.size(), mbase);
        mcand.resize(mbase.size());
        armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            cache.element_row_delta_ranges(
                scenario.link_id, scenario.array_id, /*element=*/0,
                static_cast<int>(i % radix), spans.data(), spans.size(),
                mbase, mcand);
            volatile double sink = mcand.re[spans[0].offset];
            (void)sink;
        }
        snap.masked_delta_eval_us =
            elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;
    }

    {   // Planned n-point forward FFT into reused output + scratch: the
        // FftPlan cache's zero-steady-state-allocation claim, gated.
        const util::FftPlan& plan = util::plan_for(snap.fft_size);
        util::Rng rng(77 + seed);
        util::CVec x(snap.fft_size);
        for (auto& v : x) v = rng.complex_gaussian(1.0);
        util::CVec out;
        util::FftScratch scratch;
        plan.forward(x, out, scratch);  // size out and scratch once
        constexpr std::size_t kFftIters = 400;
        const std::uint64_t armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kFftIters; ++i) {
            plan.forward(x, out, scratch);
            volatile double sink = out[0].real();
            (void)sink;
        }
        snap.plan_fwd_us = elapsed_us(t0, Clock::now(), kFftIters);
        snap.sweep_allocs += allocations() - armed;
    }

    snap.soa_per_tone_ns =
        snap.soa_eval_us * 1000.0 / static_cast<double>(snap.num_used);
    snap.delta_per_tone_ns =
        snap.delta_eval_us * 1000.0 / static_cast<double>(snap.num_used);
    snap.masked_delta_per_tone_ns = snap.masked_delta_eval_us * 1000.0 /
                                    static_cast<double>(snap.num_used);

    if (run_search) {
        // Masked vs full-band greedy under the same simulated budget,
        // both through the fused optimize_fast path (the masked one
        // tile-bounded end to end).
        snap.searched = true;
        const control::ControlPlaneModel plane =
            control::ControlPlaneModel::fast();
        control::SetConfig probe;
        probe.array_id = static_cast<std::uint16_t>(scenario.array_id);
        probe.config.assign(n_elements, 0);
        const double budget_s =
            2048.0 *
            plane.config_trial_time_s(probe, /*num_links=*/1, snap.num_used);
        const control::GreedyCoordinateDescent searcher;
        {
            const control::MaskedSnrObjective objective(
                scenario.mask, control::FusedSpec::Kind::kMinSnr,
                scenario.link_id);
            util::Rng rng(9300 + seed);
            t0 = Clock::now();
            const auto outcome = scenario.system.optimize_fast(
                scenario.array_id, objective, searcher, plane, budget_s,
                rng);
            snap.masked_search_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
            snap.masked_search_evals = outcome.search.evaluations;
            snap.masked_score_db = outcome.search.best_score_remeasured;
        }
        {
            const control::MinSnrObjective objective(scenario.link_id);
            util::Rng rng(9300 + seed);
            t0 = Clock::now();
            const auto outcome = scenario.system.optimize_fast(
                scenario.array_id, objective, searcher, plane, budget_s,
                rng);
            snap.full_search_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
            snap.full_search_evals = outcome.search.evaluations;
            snap.full_score_db = outcome.search.best_score_remeasured;
        }
    }
    return snap;
}

// Multi-user fig-harmonization scene (tentpole of the shared-basis
// multi-link work): 32 links (4 APs x 8 clients) over one 16-element
// 4-phase panel. The per-candidate comparison is the one the
// MultiLinkCache exists for: gathering all 32 responses through 4 wide
// group reads (one row selection per distinct transmitter) against the
// naive form of 32 independent LinkCache::response_into reads (one row
// selection per link). Both loops score the identical max-min fused
// reduction and run under the allocation gate. Two end-to-end
// optimize_multilink searches (greedy delta sweeps and majority vote,
// both through the max-min fairness combinator) close the section.
struct HarmonizationSnapshot {
    std::size_t num_links = 0;
    std::size_t num_groups = 0;
    std::uint64_t seed = 0;
    double build_ms = 0.0;  ///< make_multi_link_scenario wall time
    double warm_ms = 0.0;   ///< MultiLinkCache::warm (trace + wide basis)
    double shared_table_mib = 0.0;
    double naive_table_mib = 0.0;
    double shared_metadata_kib = 0.0;
    double naive_metadata_kib = 0.0;
    double shared_eval_us = 0.0;  ///< 4 wide group reads + fused scoring
    double naive_eval_us = 0.0;   ///< 32 narrow reads + identical scoring
    std::uint64_t sweep_allocs = 0;
    double greedy_ms = 0.0;
    std::size_t greedy_evals = 0;
    double greedy_score_db = 0.0;  ///< remeasured max-min utility
    double majority_ms = 0.0;
    std::size_t majority_evals = 0;
    double majority_score_db = 0.0;
};

HarmonizationSnapshot snapshot_harmonization(std::uint64_t seed) {
    HarmonizationSnapshot snap;
    snap.seed = seed;

    auto t0 = Clock::now();
    core::MultiLinkScenario scenario = core::make_multi_link_scenario(seed);
    snap.build_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
    snap.num_links = scenario.num_links;

    core::System& system = scenario.system;
    const sdr::Medium& medium = system.medium();
    const surface::Array& array = medium.array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const std::vector<int>& radices = space.radices();

    t0 = Clock::now();
    system.warm_multilink();
    snap.warm_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
    const core::MultiLinkCache& shared = system.multilink_cache();
    snap.num_groups = shared.num_groups();
    const core::MultiLinkCache::MemoryStats mem = shared.memory_stats();
    snap.shared_table_mib =
        static_cast<double>(mem.shared_table_bytes + mem.shared_static_bytes) /
        (1024.0 * 1024.0);
    snap.naive_table_mib =
        static_cast<double>(mem.naive_table_bytes + mem.naive_static_bytes) /
        (1024.0 * 1024.0);
    snap.shared_metadata_kib =
        static_cast<double>(mem.shared_metadata_bytes) / 1024.0;
    snap.naive_metadata_kib =
        static_cast<double>(mem.naive_metadata_bytes) / 1024.0;

    // The naive side: one LinkCache entry per link, as PR 5 would have it.
    core::LinkCache naive;
    for (std::size_t i = 0; i < snap.num_links; ++i)
        naive.warm(medium, i, system.link(i));

    // Candidate configs pre-expanded (4^16 space: drawn element-wise).
    util::Rng cfg_rng(4300 + seed);
    constexpr std::size_t kConfigCycle = 64;
    std::vector<surface::Config> configs;
    configs.reserve(kConfigCycle);
    for (std::size_t i = 0; i < kConfigCycle; ++i) {
        surface::Config c(space.num_elements());
        for (std::size_t e = 0; e < c.size(); ++e)
            c[e] = static_cast<int>(cfg_rng.uniform_int(0, radices[e] - 1));
        configs.push_back(std::move(c));
    }

    const util::kernels::Dispatch d = util::kernels::active();
    const std::size_t num_sc = shared.num_sc();
    constexpr std::size_t kEvalIters = 1000;

    {   // Shared path: one wide gather per transmitter group, then the
        // max-min reduction straight off the per-link segments.
        std::vector<util::kernels::SplitVec> wide(shared.num_groups());
        const auto score = [&](const surface::Config& c) {
            double worst = std::numeric_limits<double>::infinity();
            for (std::size_t g = 0; g < shared.num_groups(); ++g) {
                shared.group_response_into(medium, g, scenario.array_id, c,
                                           wide[g]);
                for (const std::size_t id : shared.group_links(g)) {
                    const std::size_t off = shared.view(id).offset;
                    worst = std::min(
                        worst, util::kernels::abs2_mean(
                                   d, wide[g].re.data() + off,
                                   wide[g].im.data() + off, num_sc));
                }
            }
            return worst;
        };
        (void)score(configs[0]);  // warm every wide scratch
        const std::uint64_t armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            volatile double sink = score(configs[i % kConfigCycle]);
            (void)sink;
        }
        snap.shared_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;
    }

    {   // Naive path: the identical scoring over 32 independent reads.
        util::kernels::SplitVec h;
        const auto score = [&](const surface::Config& c) {
            double worst = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < snap.num_links; ++i) {
                naive.response_into(medium, i, system.link(i),
                                    scenario.array_id, c, h);
                worst = std::min(worst,
                                 util::kernels::abs2_mean(
                                     d, h.re.data(), h.im.data(), num_sc));
            }
            return worst;
        };
        (void)score(configs[0]);
        const std::uint64_t armed = allocations();
        t0 = Clock::now();
        for (std::size_t i = 0; i < kEvalIters; ++i) {
            volatile double sink = score(configs[i % kConfigCycle]);
            (void)sink;
        }
        snap.naive_eval_us = elapsed_us(t0, Clock::now(), kEvalIters);
        snap.sweep_allocs += allocations() - armed;
    }

    {   // End-to-end composite searches through optimize_multilink: the
        // max-min fairness combinator under simulated budgets priced for
        // a 32-link sounding cycle.
        const control::ControlPlaneModel plane =
            control::ControlPlaneModel::fast();
        control::SetConfig probe;
        probe.array_id = static_cast<std::uint16_t>(scenario.array_id);
        probe.config.assign(space.num_elements(), 0);
        const double trial_s = plane.config_trial_time_s(
            probe, snap.num_links, medium.ofdm().num_used());
        const std::unique_ptr<control::Objective> objective =
            control::make_max_min_objective(snap.num_links);
        {
            const control::GreedyCoordinateDescent searcher;
            util::Rng rng(9200 + seed);
            core::MultiLinkScenario fresh =
                core::make_multi_link_scenario(seed);
            t0 = Clock::now();
            const auto outcome = fresh.system.optimize_multilink(
                fresh.array_id, *objective, searcher, plane,
                256.0 * trial_s, rng);
            snap.greedy_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
            snap.greedy_evals = outcome.search.evaluations;
            snap.greedy_score_db = outcome.search.best_score_remeasured;
        }
        {
            const control::MajorityVoteSearcher searcher;
            util::Rng rng(9200 + seed);
            core::MultiLinkScenario fresh =
                core::make_multi_link_scenario(seed);
            t0 = Clock::now();
            const auto outcome = fresh.system.optimize_multilink(
                fresh.array_id, *objective, searcher, plane,
                128.0 * trial_s, rng);
            snap.majority_ms = elapsed_us(t0, Clock::now(), 1) / 1000.0;
            snap.majority_evals = outcome.search.evaluations;
            snap.majority_score_db = outcome.search.best_score_remeasured;
        }
    }
    return snap;
}

void print_scene(std::FILE* out, const SceneSnapshot& s, bool last) {
    std::fprintf(
        out,
        "    {\n"
        "      \"scene\": \"%s\",\n"
        "      \"seed\": %llu,\n"
        "      \"trace_eval_us\": %.3f,\n"
        "      \"resynth_eval_us\": %.3f,\n"
        "      \"cached_eval_us\": %.3f,\n"
        "      \"cached_eval_off_us\": %.3f,\n"
        "      \"soa_eval_us\": %.3f,\n"
        "      \"delta_eval_us\": %.3f,\n"
        "      \"sweep_allocs\": %llu,\n"
        "      \"telemetry_overhead_pct\": %.2f,\n"
        "      \"speedup_vs_trace\": %.1f,\n"
        "      \"speedup_vs_resynth\": %.1f,\n"
        "      \"delta_speedup_vs_cached\": %.1f,\n"
        "      \"search_serial_ms\": %.2f,\n"
        "      \"search_batched_ms\": %.2f,\n"
        "      \"search_serial_evals\": %zu,\n"
        "      \"search_batched_evals\": %zu,\n"
        "      \"search_speedup\": %.1f\n"
        "    }%s\n",
        s.name.c_str(), static_cast<unsigned long long>(s.seed),
        s.trace_eval_us, s.resynth_eval_us, s.cached_eval_us,
        s.cached_eval_off_us, s.soa_eval_us, s.delta_eval_us,
        static_cast<unsigned long long>(s.sweep_allocs),
        s.telemetry_overhead_pct, s.trace_eval_us / s.cached_eval_us,
        s.resynth_eval_us / s.cached_eval_us,
        s.cached_eval_us / s.delta_eval_us, s.search_serial_ms,
        s.search_batched_ms, s.search_serial_evals, s.search_batched_evals,
        s.search_serial_ms / s.search_batched_ms, last ? "" : ",");
}

}  // namespace

int main() {
    // Last-N-spans post-mortem: armed for the whole run, dumped to
    // flight_perf_snapshot.json if the process dies on a signal.
    press::obs::flight_arm();
    press::obs::flight_install_signal_dump("perf_snapshot");
    // The snapshot runs with telemetry forced on so the export below is
    // fully populated (the overhead section toggles it locally), but the
    // environment's verdict is restored before the export decision so
    // PRESS_TELEMETRY=0 still suppresses the file.
    const bool env_enabled = press::obs::enabled();
    press::obs::set_enabled(true);
    const SceneSnapshot fig4 = snapshot_scene("fig4", 100);
    const SceneSnapshot fig6 = snapshot_scene("fig6", 116);
    const Fig7Snapshot fig7 = snapshot_fig7(107);
    const ServiceSnapshot service = snapshot_service(100);
    const IntrospectionSnapshot introspection = snapshot_introspection(100);
    const MassiveSnapshot massive = snapshot_massive(1024, 7001);
    // The bench mask punctures three adjacent RUs (a >=256-tone run) so
    // the tile spans actually skip whole 256-tone tiles — with the
    // scenario default (one ~124-tone RU) every tile still intersects an
    // active range and tile-bounding has nothing to skip.
    core::WidebandParams p160;
    p160.punctured_rus = {4, 5, 6};
    const WidebandSnapshot wb996 =
        snapshot_wideband("wifi6e_160", p160, 8101, /*run_search=*/true);
    core::WidebandParams p320;
    p320.ofdm = phy::OfdmParams::wifi7_320();
    p320.punctured_rus = {4, 5, 6};
    const WidebandSnapshot wb1960 =
        snapshot_wideband("wifi7_320", p320, 8101, /*run_search=*/false);
    const HarmonizationSnapshot harmonization = snapshot_harmonization(4242);

    std::FILE* out = std::fopen("BENCH_observe.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open BENCH_observe.json\n");
        return 1;
    }
    std::fprintf(out, "{\n  \"threads\": %zu,\n  \"kernel_dispatch\": \"%s\",\n",
                 press::control::BatchEvaluator::resolve_threads(0),
                 press::util::kernels::dispatch_name(
                     press::util::kernels::active()));
    // Per-candidate batch-eval latency distribution, folded in from the
    // control.batch.eval_us histogram the optimize_fast searches above
    // populated (percentiles are bucket upper bounds, so conservative).
    {
        const auto snapshot = press::obs::MetricsRegistry::global().snapshot();
        for (const auto& h : snapshot.histograms) {
            if (h.name != "control.batch.eval_us") continue;
            std::fprintf(
                out,
                "  \"eval_latency_us\": {\n"
                "    \"count\": %llu,\n"
                "    \"mean\": %.3f,\n"
                "    \"p50\": %.1f,\n"
                "    \"p99\": %.1f\n"
                "  },\n",
                static_cast<unsigned long long>(h.count),
                h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0,
                approx_percentile_us(h, 0.50),
                approx_percentile_us(h, 0.99));
        }
    }
    std::fprintf(out, "  \"scenes\": [\n");
    print_scene(out, fig4, false);
    print_scene(out, fig6, true);
    std::fprintf(out,
                 "  ],\n"
                 "  \"fig7\": {\n"
                 "    \"general_eval_us\": %.3f,\n"
                 "    \"sweep_allocs\": %llu,\n"
                 "    \"search_batched_ms\": %.2f,\n"
                 "    \"search_batched_evals\": %zu\n"
                 "  },\n",
                 fig7.general_eval_us,
                 static_cast<unsigned long long>(fig7.sweep_allocs),
                 fig7.search_batched_ms, fig7.search_batched_evals);
    std::fprintf(out,
                 "  \"service\": {\n"
                 "    \"requests_per_s\": %.1f,\n"
                 "    \"admitted\": %llu,\n"
                 "    \"served\": %llu,\n"
                 "    \"rejected\": %llu,\n"
                 "    \"expired\": %llu,\n"
                 "    \"request_p50_us\": %.1f,\n"
                 "    \"request_p99_us\": %.1f,\n"
                 "    \"queue_wait_p99_us\": %.1f,\n"
                 "    \"accounting_balanced\": %s\n"
                 "  },\n",
                 service.requests_per_s,
                 static_cast<unsigned long long>(service.admitted),
                 static_cast<unsigned long long>(service.served),
                 static_cast<unsigned long long>(service.rejected),
                 static_cast<unsigned long long>(service.expired),
                 service.request_p50_us, service.request_p99_us,
                 service.queue_wait_p99_us,
                 service.balanced ? "true" : "false");
    std::fprintf(out,
                 "  \"introspection\": {\n"
                 "    \"unsub_requests_per_s\": %.1f,\n"
                 "    \"sub_requests_per_s\": %.1f,\n"
                 "    \"overhead_pct\": %.2f,\n"
                 "    \"paired_delta_pct\": %.2f,\n"
                 "    \"sample_us\": %.2f,\n"
                 "    \"frame_us\": %.2f,\n"
                 "    \"frames\": %llu,\n"
                 "    \"exemplars\": %llu,\n"
                 "    \"invalid_frames\": %llu,\n"
                 "    \"samples\": %llu,\n"
                 "    \"frames_dropped\": %llu,\n"
                 "    \"slo_alarms\": %llu,\n"
                 "    \"flight_taps\": %llu,\n"
                 "    \"burn_series\": %llu,\n"
                 "    \"burn_peak\": %.1f,\n"
                 "    \"sample_allocs\": %llu,\n"
                 "    \"accounting_balanced\": %s\n"
                 "  },\n",
                 introspection.unsub_requests_per_s,
                 introspection.sub_requests_per_s,
                 introspection.overhead_pct,
                 introspection.paired_delta_pct, introspection.sample_us,
                 introspection.frame_us,
                 static_cast<unsigned long long>(introspection.frames),
                 static_cast<unsigned long long>(introspection.exemplars),
                 static_cast<unsigned long long>(
                     introspection.invalid_frames),
                 static_cast<unsigned long long>(introspection.samples),
                 static_cast<unsigned long long>(
                     introspection.frames_dropped),
                 static_cast<unsigned long long>(introspection.slo_alarms),
                 static_cast<unsigned long long>(introspection.taps),
                 static_cast<unsigned long long>(introspection.burn_series),
                 introspection.burn_peak,
                 static_cast<unsigned long long>(
                     introspection.sample_allocs),
                 introspection.balanced ? "true" : "false");
    std::fprintf(out,
                 "  \"massive\": {\n"
                 "    \"n_elements\": %zu,\n"
                 "    \"seed\": %llu,\n"
                 "    \"build_ms\": %.1f,\n"
                 "    \"warm_ms\": %.1f,\n"
                 "    \"basis_rows\": %zu,\n"
                 "    \"basis_row_stride\": %zu,\n"
                 "    \"basis_mib\": %.2f,\n"
                 "    \"soa_eval_us\": %.3f,\n"
                 "    \"delta_eval_us\": %.3f,\n"
                 "    \"sweep_allocs\": %llu,\n"
                 "    \"hardware_threads\": %zu,\n"
                 "    \"scaling\": [\n",
                 massive.n_elements,
                 static_cast<unsigned long long>(massive.seed),
                 massive.build_ms, massive.warm_ms, massive.basis_rows,
                 massive.basis_row_stride, massive.basis_mib,
                 massive.soa_eval_us, massive.delta_eval_us,
                 static_cast<unsigned long long>(massive.sweep_allocs),
                 massive.hardware_threads);
    for (std::size_t i = 0; i < massive.scaling.size(); ++i) {
        const auto& p = massive.scaling[i];
        std::fprintf(out,
                     "      {\"threads\": %zu, \"eval_us\": %.3f, "
                     "\"speedup\": %.2f, \"efficiency\": %.2f}%s\n",
                     p.threads, p.eval_us, p.speedup, p.efficiency,
                     i + 1 < massive.scaling.size() ? "," : "");
    }
    std::fprintf(out,
                 "    ],\n"
                 "    \"greedy_ms\": %.1f,\n"
                 "    \"greedy_evals\": %zu,\n"
                 "    \"greedy_score_db\": %.3f,\n"
                 "    \"majority_ms\": %.1f,\n"
                 "    \"majority_evals\": %zu,\n"
                 "    \"majority_score_db\": %.3f,\n"
                 "    \"score_fraction\": %.3f,\n"
                 "    \"eval_fraction\": %.3f\n"
                 "  },\n",
                 massive.greedy_ms, massive.greedy_evals,
                 massive.greedy_score, massive.majority_ms,
                 massive.majority_evals, massive.majority_score,
                 massive.score_fraction, massive.eval_fraction);
    std::fprintf(out, "  \"wideband\": {\n    \"variants\": [\n");
    for (const WidebandSnapshot* w : {&wb996, &wb1960}) {
        std::fprintf(
            out,
            "      {\n"
            "        \"band\": \"%s\",\n"
            "        \"seed\": %llu,\n"
            "        \"fft_size\": %zu,\n"
            "        \"num_used\": %zu,\n"
            "        \"active_tones\": %zu,\n"
            "        \"tile_spans\": %zu,\n"
            "        \"covered_tones\": %zu,\n"
            "        \"build_ms\": %.1f,\n"
            "        \"warm_ms\": %.1f,\n"
            "        \"basis_rows\": %zu,\n"
            "        \"basis_mib\": %.2f,\n"
            "        \"soa_eval_us\": %.3f,\n"
            "        \"masked_eval_us\": %.3f,\n"
            "        \"delta_eval_us\": %.3f,\n"
            "        \"masked_delta_eval_us\": %.3f,\n"
            "        \"plan_fwd_us\": %.3f,\n"
            "        \"soa_per_tone_ns\": %.3f,\n"
            "        \"delta_per_tone_ns\": %.3f,\n"
            "        \"masked_delta_per_tone_ns\": %.3f,\n"
            "        \"sweep_allocs\": %llu",
            w->band.c_str(), static_cast<unsigned long long>(w->seed),
            w->fft_size, w->num_used, w->active_tones, w->num_spans,
            w->covered_tones, w->build_ms, w->warm_ms, w->basis_rows,
            w->basis_mib, w->soa_eval_us, w->masked_eval_us,
            w->delta_eval_us, w->masked_delta_eval_us, w->plan_fwd_us,
            w->soa_per_tone_ns, w->delta_per_tone_ns,
            w->masked_delta_per_tone_ns,
            static_cast<unsigned long long>(w->sweep_allocs));
        if (w->searched)
            std::fprintf(
                out,
                ",\n"
                "        \"masked_search_ms\": %.1f,\n"
                "        \"masked_search_evals\": %zu,\n"
                "        \"masked_score_db\": %.3f,\n"
                "        \"full_search_ms\": %.1f,\n"
                "        \"full_search_evals\": %zu,\n"
                "        \"full_score_db\": %.3f",
                w->masked_search_ms, w->masked_search_evals,
                w->masked_score_db, w->full_search_ms,
                w->full_search_evals, w->full_score_db);
        std::fprintf(out, "\n      }%s\n", w == &wb1960 ? "" : ",");
    }
    const double fig4_delta_per_tone_ns =
        fig4.delta_eval_us * 1000.0 /
        static_cast<double>(phy::OfdmParams::wifi20().num_used());
    std::fprintf(out,
                 "    ],\n"
                 "    \"fig4_delta_per_tone_ns\": %.3f\n"
                 "  },\n",
                 fig4_delta_per_tone_ns);
    std::fprintf(out,
                 "  \"harmonization\": {\n"
                 "    \"scene\": \"fig-harmonization\",\n"
                 "    \"seed\": %llu,\n"
                 "    \"num_links\": %zu,\n"
                 "    \"num_groups\": %zu,\n"
                 "    \"build_ms\": %.1f,\n"
                 "    \"warm_ms\": %.1f,\n"
                 "    \"shared_table_mib\": %.2f,\n"
                 "    \"naive_table_mib\": %.2f,\n"
                 "    \"shared_metadata_kib\": %.2f,\n"
                 "    \"naive_metadata_kib\": %.2f,\n"
                 "    \"shared_eval_us\": %.3f,\n"
                 "    \"naive_eval_us\": %.3f,\n"
                 "    \"shared_speedup\": %.2f,\n"
                 "    \"sweep_allocs\": %llu,\n"
                 "    \"greedy_ms\": %.1f,\n"
                 "    \"greedy_evals\": %zu,\n"
                 "    \"greedy_score_db\": %.3f,\n"
                 "    \"majority_ms\": %.1f,\n"
                 "    \"majority_evals\": %zu,\n"
                 "    \"majority_score_db\": %.3f\n"
                 "  }\n}\n",
                 static_cast<unsigned long long>(harmonization.seed),
                 harmonization.num_links, harmonization.num_groups,
                 harmonization.build_ms, harmonization.warm_ms,
                 harmonization.shared_table_mib,
                 harmonization.naive_table_mib,
                 harmonization.shared_metadata_kib,
                 harmonization.naive_metadata_kib,
                 harmonization.shared_eval_us, harmonization.naive_eval_us,
                 harmonization.naive_eval_us / harmonization.shared_eval_us,
                 static_cast<unsigned long long>(harmonization.sweep_allocs),
                 harmonization.greedy_ms, harmonization.greedy_evals,
                 harmonization.greedy_score_db, harmonization.majority_ms,
                 harmonization.majority_evals,
                 harmonization.majority_score_db);
    std::fclose(out);

    for (const SceneSnapshot* s : {&fig4, &fig6}) {
        std::printf(
            "%s: trace %.1f us  resynth %.1f us  cached %.3f us  "
            "soa %.3f us  delta %.3f us  "
            "(speedup %0.fx / %.0fx, telemetry %+.2f%%)  "
            "search %.1f ms -> %.1f ms\n",
            s->name.c_str(), s->trace_eval_us, s->resynth_eval_us,
            s->cached_eval_us, s->soa_eval_us, s->delta_eval_us,
            s->trace_eval_us / s->cached_eval_us,
            s->resynth_eval_us / s->cached_eval_us,
            s->telemetry_overhead_pct, s->search_serial_ms,
            s->search_batched_ms);
    }
    std::printf("fig7: general %.3f us/candidate  search %.1f ms (%zu evals)\n",
                fig7.general_eval_us, fig7.search_batched_ms,
                fig7.search_batched_evals);
    std::printf(
        "service: %.0f req/s  p50 %.0f us  p99 %.0f us  "
        "(served %llu, rejected %llu, expired %llu, ledger %s)\n",
        service.requests_per_s, service.request_p50_us,
        service.request_p99_us,
        static_cast<unsigned long long>(service.served),
        static_cast<unsigned long long>(service.rejected),
        static_cast<unsigned long long>(service.expired),
        service.balanced ? "balanced" : "UNBALANCED");
    std::printf(
        "introspection: %.0f req/s unwatched vs %.0f req/s watched  "
        "plane cost %.2f%% (A/B %+.2f%%, sample %.1f us, frame %.1f us)  "
        "frames %llu  exemplars %llu  burn peak %.0f  taps %llu\n",
        introspection.unsub_requests_per_s,
        introspection.sub_requests_per_s, introspection.overhead_pct,
        introspection.paired_delta_pct, introspection.sample_us,
        introspection.frame_us,
        static_cast<unsigned long long>(introspection.frames),
        static_cast<unsigned long long>(introspection.exemplars),
        introspection.burn_peak,
        static_cast<unsigned long long>(introspection.taps));
    std::printf(
        "massive(n=%zu): build %.0f ms  warm %.0f ms  basis %.1f MiB  "
        "soa %.1f us  delta %.3f us\n",
        massive.n_elements, massive.build_ms, massive.warm_ms,
        massive.basis_mib, massive.soa_eval_us, massive.delta_eval_us);
    for (const auto& p : massive.scaling)
        std::printf("  threads=%zu  %.1f us/eval  speedup %.2fx  "
                    "efficiency %.2f (hw=%zu)\n",
                    p.threads, p.eval_us, p.speedup, p.efficiency,
                    massive.hardware_threads);
    std::printf(
        "  greedy %zu evals -> %.2f dB (%.1f s)  majority %zu evals -> "
        "%.2f dB (%.1f s)  score %.1f%% at %.1f%% of the evals\n",
        massive.greedy_evals, massive.greedy_score,
        massive.greedy_ms / 1000.0, massive.majority_evals,
        massive.majority_score, massive.majority_ms / 1000.0,
        massive.score_fraction * 100.0, massive.eval_fraction * 100.0);
    for (const WidebandSnapshot* w : {&wb996, &wb1960}) {
        std::printf(
            "wideband(%s, %zu tones, %zu active, %zu covered): "
            "basis %.1f MiB  soa %.2f us (masked %.2f us)  "
            "delta %.3f us (masked %.3f us)  plan fft%zu %.2f us  "
            "per-tone masked delta %.3f ns\n",
            w->band.c_str(), w->num_used, w->active_tones,
            w->covered_tones, w->basis_mib, w->soa_eval_us,
            w->masked_eval_us, w->delta_eval_us, w->masked_delta_eval_us,
            w->fft_size, w->plan_fwd_us, w->masked_delta_per_tone_ns);
        if (w->searched)
            std::printf(
                "  masked %zu evals -> %.2f dB (%.1f s)  full-band %zu "
                "evals -> %.2f dB (%.1f s)\n",
                w->masked_search_evals, w->masked_score_db,
                w->masked_search_ms / 1000.0, w->full_search_evals,
                w->full_score_db, w->full_search_ms / 1000.0);
    }
    std::printf(
        "harmonization(links=%zu, groups=%zu): build %.0f ms  warm %.0f ms  "
        "shared %.3f us/eval vs naive %.3f us/eval (%.2fx)  "
        "metadata %.1f KiB vs %.1f KiB\n",
        harmonization.num_links, harmonization.num_groups,
        harmonization.build_ms, harmonization.warm_ms,
        harmonization.shared_eval_us, harmonization.naive_eval_us,
        harmonization.naive_eval_us / harmonization.shared_eval_us,
        harmonization.shared_metadata_kib, harmonization.naive_metadata_kib);
    std::printf(
        "  max-min greedy %zu evals -> %.2f dB (%.1f s)  majority %zu "
        "evals -> %.2f dB (%.1f s)\n",
        harmonization.greedy_evals, harmonization.greedy_score_db,
        harmonization.greedy_ms / 1000.0, harmonization.majority_evals,
        harmonization.majority_score_db, harmonization.majority_ms / 1000.0);
    std::printf("wrote BENCH_observe.json\n");

    // The no-silent-drops ledger is gated like the allocation contract:
    // a service sweep that loses track of an admitted request fails the
    // run outright.
    if (!service.balanced) {
        std::fprintf(stderr,
                     "FAIL: service accounting unbalanced (admitted %llu != "
                     "served %llu + expired %llu + ...)\n",
                     static_cast<unsigned long long>(service.admitted),
                     static_cast<unsigned long long>(service.served),
                     static_cast<unsigned long long>(service.expired));
        return 1;
    }

    // Introspection correctness gates: the burst must raise the alarm
    // and reach the subscriber, every streamed frame must validate, and
    // a live subscriber may not meaningfully slow the service down.
    if (introspection.slo_alarms == 0 || introspection.taps == 0 ||
        introspection.burn_series < 3 || !introspection.balanced) {
        std::fprintf(
            stderr,
            "FAIL: SLO burn burst not observed (alarms=%llu taps=%llu "
            "burn_series=%llu balanced=%d)\n",
            static_cast<unsigned long long>(introspection.slo_alarms),
            static_cast<unsigned long long>(introspection.taps),
            static_cast<unsigned long long>(introspection.burn_series),
            introspection.balanced ? 1 : 0);
        return 1;
    }
    if (introspection.frames == 0 || introspection.exemplars == 0 ||
        introspection.invalid_frames != 0 ||
        introspection.frames_dropped != 0) {
        std::fprintf(
            stderr,
            "FAIL: subscribed sweep telemetry malformed (frames=%llu "
            "exemplars=%llu invalid=%llu dropped=%llu)\n",
            static_cast<unsigned long long>(introspection.frames),
            static_cast<unsigned long long>(introspection.exemplars),
            static_cast<unsigned long long>(introspection.invalid_frames),
            static_cast<unsigned long long>(introspection.frames_dropped));
        return 1;
    }
    if (introspection.overhead_pct > 2.0) {
        std::fprintf(stderr,
                     "FAIL: live subscriber costs %.2f%% throughput "
                     "(budget 2%%: %.0f req/s -> %.0f req/s)\n",
                     introspection.overhead_pct,
                     introspection.unsub_requests_per_s,
                     introspection.sub_requests_per_s);
        return 1;
    }

    // Wideband acceptance gate: what the masked search pays per tone of
    // the 996-tone numerology (the fused tile-bounded delta over
    // num_used) may not exceed the 52-tone fig4 scene's copy-then-add
    // per-tone cost. At 996 tones the two-step candidate falls out of
    // L1; the fused single pass (60% of the traffic) plus tile skipping
    // is what buys the per-tone line back, and a breach means that
    // machinery stopped paying for itself. The 320 MHz variant is
    // reported for trend tracking but not gated: at 1960 tones even the
    // tile-bounded working set exceeds L1 on any current core, so its
    // per-tone cost is L2-bandwidth-bound by construction.
    if (wb996.masked_delta_per_tone_ns > fig4_delta_per_tone_ns) {
        std::fprintf(stderr,
                     "FAIL: wideband(%s) per-tone masked delta cost %.3f "
                     "ns exceeds fig4's %.3f ns\n",
                     wb996.band.c_str(), wb996.masked_delta_per_tone_ns,
                     fig4_delta_per_tone_ns);
        return 1;
    }

    // The zero-allocation contract is a hard gate, not a trend: any heap
    // allocation inside a warmed steady-state sweep fails the run.
    const std::uint64_t sweep_allocs =
        fig4.sweep_allocs + fig6.sweep_allocs + fig7.sweep_allocs +
        massive.sweep_allocs + wb996.sweep_allocs + wb1960.sweep_allocs +
        harmonization.sweep_allocs + introspection.sample_allocs;
    if (sweep_allocs != 0) {
        std::fprintf(
            stderr,
            "FAIL: %llu heap allocation(s) inside steady-state "
            "sweeps (fig4=%llu fig6=%llu fig7=%llu massive=%llu "
            "wideband=%llu harmonization=%llu timeseries=%llu)\n",
            static_cast<unsigned long long>(sweep_allocs),
            static_cast<unsigned long long>(fig4.sweep_allocs),
            static_cast<unsigned long long>(fig6.sweep_allocs),
            static_cast<unsigned long long>(fig7.sweep_allocs),
            static_cast<unsigned long long>(massive.sweep_allocs),
            static_cast<unsigned long long>(wb996.sweep_allocs +
                                            wb1960.sweep_allocs),
            static_cast<unsigned long long>(harmonization.sweep_allocs),
            static_cast<unsigned long long>(introspection.sample_allocs));
        return 1;
    }

    // Emit the press.telemetry/v2 export plus its Chrome Trace rendering
    // next to BENCH_observe.json so every perf PR leaves a comparable
    // trace (cache hit rates, per-worker task counts, span timings and
    // the causal tree from the searches above).
    press::obs::set_enabled(env_enabled);
    // The manifest scenario is the comma-separated scene list: bench_diff
    // compares it as a token set, so adding a scene later only warns
    // until the baseline is re-snapshotted, while dropping one fails.
    const press::obs::RunManifest manifest = press::obs::RunManifest::capture(
        "perf_snapshot,fig4,fig6,fig7,service,introspection,massive,"
        "wideband,harmonization",
        100);
    const press::obs::RunExportPaths paths =
        press::obs::write_run_exports("perf_snapshot", manifest);
    if (paths.telemetry) std::printf("wrote %s\n", paths.telemetry->c_str());
    if (paths.trace) std::printf("wrote %s\n", paths.trace->c_str());
    return 0;
}
