// Ablation of the reflection-coefficient granularity (paper Section 4.1:
// "allowing each PRESS element to be tuned to different, finely-spaced
// phases increases the likelihood that the sum of reflected signals will
// constructively interfere ... We conjecture that around eight phase
// values along with the off state may provide sufficient resolution").
//
// For each granularity M we rebuild the scenario's array with M uniformly
// spaced reflection phases plus the off state, search for the
// configuration maximizing the worst-subcarrier SNR, and report the gain
// over the all-off (environment-only) baseline.
#include <benchmark/benchmark.h>

#include <iostream>

#include "control/objective.hpp"
#include "control/search.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"

namespace {

using namespace press;

constexpr int kSeeds = 4;

// Replaces the scenario array with uniform-phase elements at the same
// positions.
void rebuild_array(core::LinkScenario& scenario, int phases) {
    core::StudyParams p;
    surface::Array& old_array =
        scenario.system.medium().array(scenario.array_id);
    surface::Array rebuilt;
    for (const surface::Element& e : old_array.elements()) {
        rebuilt.add_element(surface::Element::uniform_phases(
            e.position(), e.antenna(), p.carrier_hz, phases,
            /*include_off=*/true));
    }
    old_array = std::move(rebuilt);
}

double best_min_snr(core::LinkScenario& scenario, std::size_t max_evals,
                    util::Rng& rng) {
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    const control::EvalFn eval = [&](const surface::Config& c) {
        scenario.system.apply(scenario.array_id, c);
        return util::min_value(
            scenario.system.measured_snr_db(scenario.link_id, rng));
    };
    // Exhaust when affordable, greedy-descend otherwise.
    if (space.size() <= max_evals) {
        control::ExhaustiveSearcher searcher;
        return searcher.search(space, eval, max_evals, rng).best_score;
    }
    control::GreedyCoordinateDescent searcher;
    return searcher.search(space, eval, max_evals, rng).best_score;
}

void run_ablation() {
    std::ostream& os = std::cout;
    os << "=== Ablation: reflection-phase granularity per element ===\n\n";

    const int granularities[] = {2, 4, 8, 16, 32};
    std::vector<std::vector<std::string>> rows;
    for (int phases : granularities) {
        double gain_acc = 0.0;
        double best_acc = 0.0;
        for (int s = 0; s < kSeeds; ++s) {
            core::LinkScenario scenario =
                core::make_link_scenario(100 + s, /*line_of_sight=*/false);
            rebuild_array(scenario, phases);
            util::Rng rng(900 + s);

            // Baseline: every element absorptive (the off state is last).
            surface::Array& array =
                scenario.system.medium().array(scenario.array_id);
            surface::Config all_off(array.size(), phases);
            scenario.system.apply(scenario.array_id, all_off);
            const double baseline = util::min_value(
                scenario.system.measured_snr_db(scenario.link_id, rng));

            const double best = best_min_snr(scenario, 2048, rng);
            best_acc += best / kSeeds;
            gain_acc += (best - baseline) / kSeeds;
        }
        rows.push_back({std::to_string(phases),
                        core::fmt(best_acc, 2), core::fmt(gain_acc, 2)});
    }
    core::print_table(os,
                      {"phases/element", "best min-SNR (dB)",
                       "gain over all-off (dB)"},
                      rows);
    os << "\nPaper conjecture: ~8 phase values (plus off) suffice; finer "
          "granularity should show diminishing returns.\n\n";
}

void BM_GreedyAtGranularity(benchmark::State& state) {
    const int phases = static_cast<int>(state.range(0));
    core::LinkScenario scenario = core::make_link_scenario(100, false);
    rebuild_array(scenario, phases);
    util::Rng rng(900);
    for (auto _ : state) {
        benchmark::DoNotOptimize(best_min_snr(scenario, 256, rng));
    }
}
BENCHMARK(BM_GreedyAtGranularity)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
