// Substrate sensitivity: do the paper's conclusions depend on the channel
// model? The main benches use a deterministic image-method room; this
// ablation reruns the headline link-enhancement metrics on a
// Saleh-Valenzuela statistical substrate (Poisson cluster arrivals,
// doubly exponential decay, Rayleigh amplitudes) with the same blocked
// direct path and the same 3-element SP4T array. The qualitative results
// — tens-of-dB swings at null subcarriers, movable nulls, a substantial
// fraction of configuration pairs changing the worst subcarrier by >=10 dB
// — must survive the substitution.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"

namespace {

using namespace press;

struct SubstrateStats {
    double max_pair_diff_db = 0.0;
    double frac_pairs_10db = 0.0;
    double max_null_move = 0.0;
    double min_snr_low = 0.0;
    double min_snr_high = 0.0;
};

template <typename MakeScenario>
SubstrateStats measure(MakeScenario make, int seeds) {
    SubstrateStats stats;
    std::vector<double> mins;
    double frac_acc = 0.0;
    for (int s = 0; s < seeds; ++s) {
        core::LinkScenario scenario = make(100 + s);
        util::Rng rng(7000 + s);
        const core::ConfigSweep sweep =
            core::sweep_configurations(scenario, 6, rng);
        stats.max_pair_diff_db = std::max(
            stats.max_pair_diff_db, core::find_extreme_pair(sweep).max_diff_db);
        const auto moves = core::null_movements(sweep);
        if (!moves.empty())
            stats.max_null_move =
                std::max(stats.max_null_move, util::max_value(moves));
        std::size_t with10 = 0;
        std::size_t total = 0;
        const std::size_t n = sweep.mean_snr_db.size();
        for (std::size_t a = 0; a < n; ++a) {
            mins.push_back(util::min_value(sweep.mean_snr_db[a]));
            for (std::size_t b = a + 1; b < n; ++b) {
                ++total;
                for (std::size_t k = 0; k < sweep.num_subcarriers; ++k) {
                    if (std::abs(sweep.mean_snr_db[a][k] -
                                 sweep.mean_snr_db[b][k]) >= 10.0) {
                        ++with10;
                        break;
                    }
                }
            }
        }
        frac_acc += static_cast<double>(with10) /
                    static_cast<double>(total) / seeds;
    }
    stats.frac_pairs_10db = frac_acc;
    stats.min_snr_low = util::percentile(mins, 5.0);
    stats.min_snr_high = util::percentile(mins, 95.0);
    return stats;
}

void run_ablation() {
    std::ostream& os = std::cout;
    os << "=== Substrate ablation: image-method room vs. Saleh-Valenzuela "
          "statistical channel ===\n\n";
    const int seeds = 4;
    const SubstrateStats traced = measure(
        [](std::uint64_t s) { return core::make_link_scenario(s, false); },
        seeds);
    const SubstrateStats sv = measure(
        [](std::uint64_t s) { return core::make_sv_link_scenario(s); },
        seeds);

    std::vector<std::vector<std::string>> rows;
    auto row = [&](const char* name, const SubstrateStats& st) {
        rows.push_back({name, core::fmt(st.max_pair_diff_db, 1),
                        core::fmt(100.0 * st.frac_pairs_10db, 1) + "%",
                        core::fmt(st.max_null_move, 0),
                        core::fmt(st.min_snr_low, 1) + ".." +
                            core::fmt(st.min_snr_high, 1)});
    };
    row("image-method room", traced);
    row("Saleh-Valenzuela", sv);
    core::print_table(os,
                      {"substrate", "max pair diff (dB)",
                       "pairs with >=10 dB change", "max null move (sc)",
                       "min-SNR p5..p95 (dB)"},
                      rows);
    os << "\nShape: both substrates show tens-of-dB swings, movable nulls "
          "and a sizeable fraction of >=10 dB configuration changes; the "
          "paper's conclusions do not hinge on the ray tracer.\n\n";
}

void BM_SvRealization(benchmark::State& state) {
    for (auto _ : state) {
        core::LinkScenario scenario = core::make_sv_link_scenario(100);
        benchmark::DoNotOptimize(&scenario.system);
    }
}
BENCHMARK(BM_SvRealization)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    run_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
