// Reproduces Figure 7: "Two configurations demonstrating control over
// frequency selectivity" — two PRESS configurations with "clear and
// opposite frequency selectivity; each one favors its own half of the
// band" on an N210 link with two 4-phase elements. The paper manipulated
// the environment until such a channel appeared; find_harmonization_pair
// emulates that curation by advancing the scenario seed.
//
// As an extension, the second part exercises the paper's Figure-2 vision:
// two co-located networks plus their interference channels, optimized with
// the WeightedBandObjective so each network gets its own half of the band
// while the cross-network channels are suppressed there.
#include <benchmark/benchmark.h>

#include <iostream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::uint64_t kBaseSeed = 300;
constexpr int kMaxCuration = 100;

void reproduce_figure() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Figure 7: opposite frequency selectivity from two "
          "configurations ===\n\n";

    util::Rng rng(42);
    const core::HarmonizationPair pair = core::find_harmonization_pair(
        kBaseSeed, kMaxCuration, /*min_selectivity_db=*/2.5, rng);
    if (!pair.found) {
        os << "fig7 curation failed to find a frequency-selective channel "
              "(unexpected; see EXPERIMENTS.md)\n";
        return;
    }
    os << "curated scenario seed " << pair.seed << ": config A "
       << pair.label_a << " favors the LOW half by "
       << core::fmt(pair.selectivity_a_db, 1) << " dB, config B "
       << pair.label_b << " favors the HIGH half by "
       << core::fmt(-pair.selectivity_b_db, 1) << " dB\n\n";
    for (std::size_t k = 0; k < pair.snr_a_db.size(); ++k)
        os << "fig7 " << (k + 1) << " " << core::fmt(pair.snr_a_db[k], 2)
           << " " << core::fmt(pair.snr_b_db[k], 2) << "\n";
    os << "fig7-profileA " << core::sparkline(pair.snr_a_db) << "\n";
    os << "fig7-profileB " << core::sparkline(pair.snr_b_db) << "\n";

    // ---- Extension: the Figure-2 two-network harmonization vision ----
    os << "\n=== Extension: two-network harmonization with interference "
          "suppression (paper Figure 2) ===\n\n";
    core::HarmonizationScenario hs =
        core::make_harmonization_scenario(pair.seed);
    const std::size_t n_sc = hs.system.medium().ofdm().num_used();
    const auto objective = control::make_harmonization_objective(
        n_sc, /*interference_links=*/true);

    util::Rng opt_rng(7);
    const control::Observation before = hs.system.observe(opt_rng);
    const double score_before = objective->score(before);
    control::GreedyCoordinateDescent searcher;
    const control::OptimizationOutcome outcome = hs.system.optimize(
        hs.array_id, *objective, searcher, control::ControlPlaneModel::fast(),
        /*time_budget_s=*/0.08, opt_rng);
    const control::Observation after = hs.system.observe(opt_rng);

    auto band_mean = [&](const control::Observation& obs, std::size_t link,
                         bool low) {
        const auto& snr = obs.link_snr_db[link];
        const std::size_t half = snr.size() / 2;
        std::vector<double> band(low ? snr.begin() : snr.begin() + half,
                                 low ? snr.begin() + half : snr.end());
        return util::mean(band);
    };
    std::vector<std::vector<std::string>> rows;
    const char* names[] = {"comm A (low band)", "comm B (high band)",
                           "interference A->clientB (high band)",
                           "interference B->clientA (low band)"};
    const bool lows[] = {true, false, false, true};
    for (std::size_t l = 0; l < 4; ++l)
        rows.push_back({names[l],
                        core::fmt(band_mean(before, l, lows[l]), 1),
                        core::fmt(band_mean(after, l, lows[l]), 1)});
    core::print_table(
        os, {"channel (band scored)", "before (dB)", "after (dB)"}, rows);
    os << "harmonization score: " << core::fmt(score_before, 1) << " -> "
       << core::fmt(outcome.search.best_score, 1) << " ("
       << outcome.search.evaluations << " trials, "
       << core::fmt(outcome.elapsed_s * 1e3, 1)
       << " ms simulated control-plane time)\n\n";
}

void BM_HarmonizationCuration(benchmark::State& state) {
    using namespace press;
    for (auto _ : state) {
        util::Rng rng(42);
        auto pair = core::find_harmonization_pair(kBaseSeed, 5, 2.5, rng);
        benchmark::DoNotOptimize(pair.found);
    }
}
BENCHMARK(BM_HarmonizationCuration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // Telemetry accumulated by the figure reproduction and the timing
    // section above (trace counts, cache activity, search convergence);
    // no-op when PRESS_TELEMETRY is off.
    const press::obs::RunManifest manifest =
        press::obs::RunManifest::capture("fig7_harmonization", kBaseSeed);
    const press::obs::RunExportPaths paths =
        press::obs::write_run_exports("fig7_harmonization", manifest);
    if (paths.telemetry) std::cout << "wrote " << *paths.telemetry << "\n";
    if (paths.trace) std::cout << "wrote " << *paths.trace << "\n";
    return 0;
}
