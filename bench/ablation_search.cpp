// Ablation of search strategies under measurement budgets (paper Section
// 4.2: "With N PRESS elements, each having M possible reflection
// coefficients, enumerating the M^N possibilities in the search space for
// the optimal configuration becomes impractical").
//
// An 8-element SP4T array has 4^8 = 65536 configurations; within realistic
// coherence-time budgets only a handful of trials fit, so strategy
// matters. The second table prices the trials with the control-plane
// model: the paper's prototype pace (~5 s per 64-config sweep) versus a
// deployment-grade control plane, against the coherence times the paper
// quotes (~80 ms quasi-static, ~6 ms at walking pace).
#include <benchmark/benchmark.h>

#include <iostream>

#include "control/controller.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"

namespace {

using namespace press;

core::LinkScenario make_big_scenario(std::uint64_t seed) {
    core::StudyParams p;
    p.num_elements = 8;
    return core::make_link_scenario(seed, /*line_of_sight=*/false, p);
}

void run_ablation() {
    std::ostream& os = std::cout;
    os << "=== Ablation: search strategies on an 8-element array (4^8 = "
          "65536 configs) ===\n\n";

    const std::size_t budgets[] = {16, 64, 256, 1024};
    std::vector<std::vector<std::string>> rows;
    for (const auto& searcher : control::all_searchers()) {
        std::vector<std::string> row{searcher->name()};
        for (std::size_t budget : budgets) {
            double acc = 0.0;
            const int seeds = 3;
            for (int s = 0; s < seeds; ++s) {
                core::LinkScenario scenario = make_big_scenario(120 + s);
                util::Rng rng(4000 + s);
                const surface::ConfigSpace space =
                    scenario.system.medium()
                        .array(scenario.array_id)
                        .config_space();
                const control::EvalFn eval =
                    [&](const surface::Config& c) {
                        scenario.system.apply(scenario.array_id, c);
                        return util::min_value(scenario.system.measured_snr_db(
                            scenario.link_id, rng));
                    };
                acc += searcher->search(space, eval, budget, rng).best_score /
                       seeds;
            }
            row.push_back(core::fmt(acc, 2));
        }
        rows.push_back(std::move(row));
    }
    core::print_table(os,
                      {"strategy", "best min-SNR @16 evals", "@64", "@256",
                       "@1024"},
                      rows);

    os << "\n=== Trials affordable within the coherence time ===\n\n";
    core::LinkScenario scenario = make_big_scenario(120);
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    const auto count_trials = [&](const control::ControlPlaneModel& model,
                                  double budget_s) {
        control::Controller controller(
            model, [](const surface::Config&) { return true; },
            []() { return control::Observation{{{0.0}}, {}}; }, 1,
            scenario.system.medium().ofdm().num_used());
        return controller.trials_within(space, budget_s);
    };
    const double coherence_budgets[] = {6e-3, 80e-3, 5.0};
    const char* budget_names[] = {"6 ms (walking)", "80 ms (quasi-static)",
                                  "5 s (prototype sweep)"};
    std::vector<std::vector<std::string>> trows;
    for (int b = 0; b < 3; ++b) {
        trows.push_back(
            {budget_names[b],
             std::to_string(count_trials(control::ControlPlaneModel::prototype(),
                                         coherence_budgets[b])),
             std::to_string(count_trials(control::ControlPlaneModel::fast(),
                                         coherence_budgets[b]))});
    }
    core::print_table(
        os, {"coherence budget", "prototype control plane", "fast control plane"},
        trows);
    os << "\nShape: the prototype pace cannot finish even a 64-config sweep "
          "inside any coherence window (the paper needed ~5 s); a\n"
          "deployment-grade control plane fits tens-to-hundreds of trials, "
          "and budget-aware heuristics recover most of the exhaustive "
          "optimum.\n\n";
}

void BM_SearcherAtBudget(benchmark::State& state) {
    const auto searchers = control::all_searchers();
    const auto& searcher = *searchers[static_cast<std::size_t>(
        state.range(0))];
    core::LinkScenario scenario = make_big_scenario(120);
    util::Rng rng(4000);
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    const control::EvalFn eval = [&](const surface::Config& c) {
        scenario.system.apply(scenario.array_id, c);
        return util::min_value(
            scenario.system.measured_snr_db(scenario.link_id, rng));
    };
    for (auto _ : state) {
        auto result = searcher.search(space, eval, 64, rng);
        benchmark::DoNotOptimize(result.best_score);
    }
}
BENCHMARK(BM_SearcherAtBudget)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
