// Degradation curve: objective score vs fraction of faulty elements, with
// health monitoring off (the controller trusts every element) and on
// (probe sweep -> freeze suspects -> search the healthy dimensions only).
//
// The paper's deployment story is hundreds of cheap wall elements, where
// stuck switches and dead loads are the steady state. This bench measures
// how gracefully the control loop degrades: without monitoring the
// searcher burns its coherence-time budget toggling switches that do not
// respond — and trusts configurations that flaky hardware never actually
// assumed; with monitoring those dimensions are frozen and the same budget
// concentrates on the elements that still work.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::uint64_t kPlacementSeed = 300;
constexpr int kSeeds = 12;           // placements averaged per point
/// Tight on purpose: roughly one greedy pass over the full wall, so
/// trials wasted on unresponsive elements are trials the healthy ones
/// never get.
constexpr double kBudgetS = 0.06;
/// 8 elements: 0, 1, 2, 3, 4 faulty.
constexpr double kFractions[] = {0.0, 0.125, 0.25, 0.375, 0.5};

press::core::StudyParams wall_params() {
    press::core::StudyParams params;
    params.num_elements = 8;  // a wall worth degrading gracefully
    return params;
}

/// One (placement, fault draw) cell of the curve.
struct CellResult {
    double score_off_db = 0.0;  ///< true min-SNR after naive optimize
    double score_on_db = 0.0;   ///< ... after probe + degraded optimize
    std::size_t flagged = 0;    ///< elements the probe froze
    std::size_t injected = 0;   ///< elements actually faulty
    double probe_s = 0.0;       ///< maintenance-window time spent probing
};

CellResult run_cell(std::uint64_t placement_seed, double fraction) {
    using namespace press;
    const control::MinSnrObjective objective(0);
    const control::GreedyCoordinateDescent searcher;
    const control::ControlPlaneModel plane =
        control::ControlPlaneModel::fast();

    // The fault draw must be identical in both arms, so sample it once
    // from a stream derived from the placement.
    util::Rng fault_rng(placement_seed * 7919 + 17);

    CellResult cell;
    for (int monitored = 0; monitored < 2; ++monitored) {
        // A fresh, identical world per arm: same placement, same faults.
        core::LinkScenario scenario = core::make_link_scenario(
            placement_seed, /*line_of_sight=*/false, wall_params());
        scenario.system.set_sounding_repeats(24);
        const surface::ConfigSpace space =
            scenario.system.medium().array(scenario.array_id).config_space();

        util::Rng draw = fault_rng;  // same draw for both arms
        fault::FaultModel model = fault::FaultModel::sample(
            space, fraction, draw);
        cell.injected = model.num_faulty();
        if (!model.empty())
            scenario.system.inject_faults(scenario.array_id,
                                          std::move(model));

        util::Rng run_rng(placement_seed * 31 + 5);
        if (monitored == 1) {
            // A maintenance probe averages many more soundings than a
            // live trial, so estimator noise on the mean-SNR response
            // sits well below this threshold even for weakly-coupled
            // healthy elements.
            fault::ProbeOptions options;
            options.response_threshold_db = 0.25;
            scenario.system.set_sounding_repeats(96);
            const fault::HealthReport report =
                scenario.system.probe_health(scenario.array_id, plane,
                                             run_rng, options);
            scenario.system.set_sounding_repeats(24);
            cell.flagged = report.num_suspect();
            cell.probe_s = report.elapsed_s;
            (void)scenario.system.optimize_degraded(
                scenario.array_id, objective, searcher, plane, kBudgetS,
                report, run_rng);
        } else {
            (void)scenario.system.optimize(scenario.array_id, objective,
                                           searcher, plane, kBudgetS,
                                           run_rng);
        }
        // Score what is actually on the wall, noise-free: faults mean the
        // controller's belief and the hardware can disagree.
        const double score =
            objective.score(scenario.system.observe_true());
        (monitored == 1 ? cell.score_on_db : cell.score_off_db) = score;
    }
    return cell;
}

void reproduce_figure() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Degradation curve: true min-subcarrier SNR after a "
       << core::fmt(kBudgetS * 1e3, 0)
       << " ms optimization vs fraction of faulty elements ===\n"
       << "    (8-element wall, greedy coordinate descent, fast control "
          "plane, "
       << kSeeds << " placements per point)\n\n";
    os << "fraction  monitor-off  monitor-on   delta  flagged/injected  "
          "probe-ms\n";

    for (double fraction : kFractions) {
        std::vector<double> off, on;
        double flagged = 0.0, injected = 0.0, probe_ms = 0.0;
        for (int s = 0; s < kSeeds; ++s) {
            const CellResult cell = run_cell(
                kPlacementSeed + static_cast<std::uint64_t>(s), fraction);
            off.push_back(cell.score_off_db);
            on.push_back(cell.score_on_db);
            flagged += static_cast<double>(cell.flagged) / kSeeds;
            injected += static_cast<double>(cell.injected) / kSeeds;
            probe_ms += cell.probe_s * 1e3 / kSeeds;
        }
        const double mean_off = util::mean(off);
        const double mean_on = util::mean(on);
        os << "  " << core::fmt(fraction, 2) << "       "
           << core::fmt(mean_off, 2) << "       " << core::fmt(mean_on, 2)
           << "     " << core::fmt(mean_on - mean_off, 2) << "      "
           << core::fmt(flagged, 1) << " / " << core::fmt(injected, 1)
           << "         " << core::fmt(probe_ms, 0) << "\n";
    }
    os << "\nThe probe sweep is priced with the same control-plane model "
          "but charged to a maintenance window, not the coherence-time "
          "search budget.\n\n";
}

void BM_HealthProbe(benchmark::State& state) {
    using namespace press;
    core::LinkScenario scenario =
        core::make_link_scenario(kPlacementSeed, false, wall_params());
    util::Rng rng(1);
    const auto plane = control::ControlPlaneModel::fast();
    for (auto _ : state) {
        auto report =
            scenario.system.probe_health(scenario.array_id, plane, rng);
        benchmark::DoNotOptimize(report.response_db.data());
    }
}
BENCHMARK(BM_HealthProbe)->Unit(benchmark::kMillisecond);

void BM_DegradedOptimize(benchmark::State& state) {
    using namespace press;
    core::LinkScenario scenario =
        core::make_link_scenario(kPlacementSeed, false, wall_params());
    util::Rng rng(2);
    const auto plane = control::ControlPlaneModel::fast();
    scenario.system.inject_faults(
        scenario.array_id,
        fault::FaultModel::sample(
            scenario.system.medium().array(scenario.array_id).config_space(),
            0.3, rng));
    const fault::HealthReport report =
        scenario.system.probe_health(scenario.array_id, plane, rng);
    const control::MinSnrObjective objective(0);
    const control::GreedyCoordinateDescent searcher;
    for (auto _ : state) {
        auto outcome = scenario.system.optimize_degraded(
            scenario.array_id, objective, searcher, plane, kBudgetS,
            report, rng);
        benchmark::DoNotOptimize(outcome.search.evaluations);
    }
}
BENCHMARK(BM_DegradedOptimize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
