// Reproduces Figure 4: "measured per-subcarrier SNR for two PRESS
// configurations for each of eight randomly generated PRESS element
// locations (a) through (h)" — the two configurations per placement being
// the pair with the largest single-subcarrier SNR difference — plus the
// section's headline numbers: "the largest change in the mean SNR on any
// given subcarrier is 18.6 dB, and the largest change in the SNR within one
// experimental repetition is 26 dB."
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"

namespace {

constexpr std::uint64_t kBaseSeed = 100;
constexpr int kPlacements = 8;
constexpr int kTrials = 10;  // the paper iterates the 64 combinations 10x

void reproduce_figure() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Figure 4: per-subcarrier SNR, extreme configuration pair per "
          "placement ===\n\n";

    double overall_mean_swing = 0.0;
    double overall_trial_swing = 0.0;
    std::vector<std::vector<std::string>> rows;
    for (int p = 0; p < kPlacements; ++p) {
        core::LinkScenario scenario =
            core::make_link_scenario(kBaseSeed + p, /*line_of_sight=*/false);
        util::Rng rng(7000 + p);
        core::ConfigSweep sweep =
            core::sweep_configurations(scenario, kTrials, rng);
        const core::ExtremePair pair = core::find_extreme_pair(sweep);

        const char panel = static_cast<char>('a' + p);
        os << "--- placement (" << panel << ")  configs "
           << sweep.config_labels[pair.config_a] << " vs "
           << sweep.config_labels[pair.config_b] << " ---\n";
        const auto& snr_a = sweep.mean_snr_db[pair.config_a];
        const auto& snr_b = sweep.mean_snr_db[pair.config_b];
        for (std::size_t k = 0; k < snr_a.size(); ++k)
            os << "fig4" << panel << " " << k << " "
               << core::fmt(snr_a[k], 2) << " " << core::fmt(snr_b[k], 2)
               << "\n";
        os << "fig4" << panel << "-profileA "
           << core::sparkline(snr_a) << "\n";
        os << "fig4" << panel << "-profileB "
           << core::sparkline(snr_b) << "\n";

        core::LinkScenario swing_scenario =
            core::make_link_scenario(kBaseSeed + p, false);
        util::Rng swing_rng(7100 + p);
        const double trial_swing =
            core::max_single_trial_swing_db(swing_scenario, kTrials,
                                            swing_rng);
        overall_mean_swing =
            std::max(overall_mean_swing, pair.max_diff_db);
        overall_trial_swing = std::max(overall_trial_swing, trial_swing);
        rows.push_back({std::string(1, panel),
                        sweep.config_labels[pair.config_a],
                        sweep.config_labels[pair.config_b],
                        core::fmt(pair.max_diff_db, 1),
                        std::to_string(pair.subcarrier),
                        core::fmt(trial_swing, 1)});
    }
    os << "\n";
    core::print_table(os,
                      {"placement", "config A", "config B",
                       "max mean-SNR diff (dB)", "at subcarrier",
                       "max single-trial swing (dB)"},
                      rows);
    os << "\nPaper: largest mean-SNR change on one subcarrier 18.6 dB; "
          "largest single-repetition change 26 dB.\n";
    os << "Ours:  largest mean-SNR change " << core::fmt(overall_mean_swing, 1)
       << " dB; largest single-trial change "
       << core::fmt(overall_trial_swing, 1) << " dB.\n\n";
}

void BM_ConfigSweep64x1(benchmark::State& state) {
    using namespace press;
    core::LinkScenario scenario = core::make_link_scenario(kBaseSeed, false);
    util::Rng rng(1);
    for (auto _ : state) {
        core::ConfigSweep sweep =
            core::sweep_configurations(scenario, 1, rng);
        benchmark::DoNotOptimize(sweep.mean_snr_db.data());
    }
}
BENCHMARK(BM_ConfigSweep64x1)->Unit(benchmark::kMillisecond);

void BM_SingleSounding(benchmark::State& state) {
    using namespace press;
    core::LinkScenario scenario = core::make_link_scenario(kBaseSeed, false);
    util::Rng rng(1);
    for (auto _ : state) {
        auto snr = scenario.system.measured_snr_db(scenario.link_id, rng);
        benchmark::DoNotOptimize(snr.data());
    }
}
BENCHMARK(BM_SingleSounding)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // Telemetry accumulated by the figure reproduction and the timing
    // section above (trace counts, cache activity, search convergence);
    // no-op when PRESS_TELEMETRY is off.
    const press::obs::RunManifest manifest =
        press::obs::RunManifest::capture("fig4_link_enhancement", kBaseSeed);
    const press::obs::RunExportPaths paths =
        press::obs::write_run_exports("fig4_link_enhancement", manifest);
    if (paths.telemetry) std::cout << "wrote " << *paths.telemetry << "\n";
    if (paths.trace) std::cout << "wrote " << *paths.trace << "\n";
    return 0;
}
