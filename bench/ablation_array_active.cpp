// Ablations of the array composition (paper Sections 1, 3 and 4.1):
//  (a) array size: how much worst-subcarrier SNR a passive array of
//      1..8 elements can recover in non-line-of-sight;
//  (b) passive vs. active elements on a line-of-sight link (the paper:
//      "line-of-sight links require some active PRESS elements");
//  (c) the conventional alternative the paper argues against: optimizing
//      the endpoint instead of the environment, here a massive-MIMO-style
//      switched antenna selection at the transmitter.
#include <benchmark/benchmark.h>

#include <iostream>

#include "control/search.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace {

using namespace press;

double best_min_snr(core::LinkScenario& scenario, std::size_t max_evals,
                    util::Rng& rng) {
    const surface::ConfigSpace space =
        scenario.system.medium().array(scenario.array_id).config_space();
    const control::EvalFn eval = [&](const surface::Config& c) {
        scenario.system.apply(scenario.array_id, c);
        return util::min_value(
            scenario.system.measured_snr_db(scenario.link_id, rng));
    };
    if (space.size() <= max_evals) {
        return control::ExhaustiveSearcher()
            .search(space, eval, max_evals, rng)
            .best_score;
    }
    return control::GreedyCoordinateDescent()
        .search(space, eval, max_evals, rng)
        .best_score;
}

double baseline_min_snr(core::LinkScenario& scenario, util::Rng& rng) {
    surface::Array& array =
        scenario.system.medium().array(scenario.array_id);
    // The off state is the last state on every element of these arrays.
    surface::Config all_off;
    for (const surface::Element& e : array.elements())
        all_off.push_back(e.num_states() - 1);
    scenario.system.apply(scenario.array_id, all_off);
    return util::min_value(
        scenario.system.measured_snr_db(scenario.link_id, rng));
}

void run_array_size() {
    std::ostream& os = std::cout;
    os << "=== (a) Passive array size vs. worst-subcarrier SNR (NLoS) "
          "===\n\n";
    std::vector<std::vector<std::string>> rows;
    for (int n = 1; n <= 8; n *= 2) {
        double gain = 0.0;
        const int seeds = 4;
        for (int s = 0; s < seeds; ++s) {
            core::StudyParams p;
            p.num_elements = n;
            core::LinkScenario scenario =
                core::make_link_scenario(100 + s, false, p);
            util::Rng rng(5000 + s);
            const double base = baseline_min_snr(scenario, rng);
            const double best = best_min_snr(scenario, 1024, rng);
            gain += (best - base) / seeds;
        }
        rows.push_back({std::to_string(n), core::fmt(gain, 2)});
    }
    core::print_table(os, {"elements", "min-SNR gain over all-off (dB)"},
                      rows);
    os << "\nShape: gains grow with array size (more degrees of freedom to "
          "steer multipath), motivating the paper's wall-scale vision.\n\n";
}

void run_active_vs_passive() {
    std::ostream& os = std::cout;
    os << "=== (b) Passive vs. active elements on a line-of-sight link "
          "===\n\n";
    core::StudyParams los;
    los.link_distance_m = 1.5;
    std::vector<std::vector<std::string>> rows;
    const int seeds = 4;
    for (double gain_db : {-1e9, 10.0, 20.0}) {  // -1e9 marks passive
        double swing = 0.0;
        for (int s = 0; s < seeds; ++s) {
            core::LinkScenario scenario =
                gain_db < -1e8
                    ? core::make_link_scenario(200 + s, true, los)
                    : core::make_active_link_scenario(200 + s, true,
                                                      gain_db, los);
            swing += core::max_true_swing_db(scenario) / seeds;
        }
        rows.push_back({gain_db < -1e8 ? "passive (SP4T stubs)"
                                       : "active +" +
                                             core::fmt(gain_db, 0) + " dB",
                        core::fmt(swing, 2)});
    }
    core::print_table(os, {"element type", "max LoS SNR swing (dB)"}, rows);
    os << "\nPaper: passive elements change LoS links by <2 dB; active "
          "(PhyCloak-like) elements are needed there.\n\n";
}

void run_endpoint_baseline() {
    std::ostream& os = std::cout;
    os << "=== (c) Environment (PRESS) vs. endpoint antenna selection "
          "(NLoS) ===\n\n";
    std::vector<std::vector<std::string>> rows;
    const int seeds = 4;
    double press_gain = 0.0;
    double endpoint_gain = 0.0;
    for (int s = 0; s < seeds; ++s) {
        core::LinkScenario scenario =
            core::make_link_scenario(100 + s, false);
        util::Rng rng(6000 + s);
        const double base = baseline_min_snr(scenario, rng);

        // PRESS: optimize the environment, endpoint fixed.
        const double press_best = best_min_snr(scenario, 1024, rng);

        // Endpoint baseline: the AP switches among 4 candidate antennas
        // (half-wavelength offsets), PRESS array off.
        surface::Array& array =
            scenario.system.medium().array(scenario.array_id);
        surface::Config all_off;
        for (const surface::Element& e : array.elements())
            all_off.push_back(e.num_states() - 1);
        scenario.system.apply(scenario.array_id, all_off);
        const em::Vec3 base_pos = scenario.system.link(0).tx.position;
        const double lambda = util::wavelength(
            scenario.system.medium().ofdm().carrier_hz());
        double best_endpoint = -1e9;
        for (int a = 0; a < 4; ++a) {
            scenario.system.link(0).tx.position = {
                base_pos.x, base_pos.y + (a % 2) * lambda / 2.0,
                base_pos.z + (a / 2) * lambda / 2.0};
            best_endpoint = std::max(
                best_endpoint,
                util::min_value(scenario.system.measured_snr_db(
                    scenario.link_id, rng)));
        }
        press_gain += (press_best - base) / seeds;
        endpoint_gain += (best_endpoint - base) / seeds;
    }
    rows.push_back({"PRESS (3 elements, 64 configs)",
                    core::fmt(press_gain, 2)});
    rows.push_back({"endpoint antenna selection (4 antennas)",
                    core::fmt(endpoint_gain, 2)});
    core::print_table(os, {"approach", "min-SNR gain (dB)"}, rows);
    os << "\nShape: the environment offers more usable degrees of freedom "
          "than a handful of endpoint antennas, the paper's core "
          "argument.\n\n";
}

void BM_ActiveScenarioSwing(benchmark::State& state) {
    core::StudyParams los;
    los.link_distance_m = 1.5;
    core::LinkScenario scenario =
        core::make_active_link_scenario(200, true, 20.0, los);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::max_true_swing_db(scenario));
}
BENCHMARK(BM_ActiveScenarioSwing)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_array_size();
    run_active_vs_passive();
    run_endpoint_baseline();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
