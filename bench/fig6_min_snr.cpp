// Reproduces Figure 6. Left: "Complementary CDF of the change in minimum
// SNR among subcarriers between pairs of PRESS element configurations."
// Right: "Complementary CDF of the minimum SNR among subcarriers for all 64
// PRESS element configurations. Each trace is one of the 10 trials."
// Headline shape: "Around 38% of the configuration changes cause a 10 dB
// SNR change on at least one subcarrier, and less than 9% of the
// configurations show a worst subcarrier channel gain below 20 dB."
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::uint64_t kPlacementSeed = 116;
constexpr int kTrials = 10;

void reproduce_figure() {
    using namespace press;
    std::ostream& os = std::cout;
    os << "=== Figure 6 (left): CCDF of |change in min-subcarrier SNR| "
          "across config pairs ===\n\n";

    core::LinkScenario scenario =
        core::make_link_scenario(kPlacementSeed, /*line_of_sight=*/false);
    // A measurement frame carries many training symbols; average enough of
    // them that estimator noise does not masquerade as spectral nulls.
    scenario.system.set_sounding_repeats(10);
    util::Rng rng(7000);
    core::ConfigSweep sweep =
        core::sweep_configurations(scenario, kTrials, rng);

    const std::vector<double> changes = core::min_snr_changes(sweep);
    core::print_ccdf(os, "fig6-left", changes, 30);

    // The paper's 10 dB statistic is over "configuration changes" causing a
    // 10 dB change on at least one subcarrier; compute both statistics.
    std::size_t pairs_with_10db = 0;
    std::size_t total_pairs = 0;
    const std::size_t n_cfg = sweep.mean_snr_db.size();
    for (std::size_t a = 0; a < n_cfg; ++a) {
        for (std::size_t b = a + 1; b < n_cfg; ++b) {
            ++total_pairs;
            for (std::size_t k = 0; k < sweep.num_subcarriers; ++k) {
                if (std::abs(sweep.mean_snr_db[a][k] -
                             sweep.mean_snr_db[b][k]) >= 10.0) {
                    ++pairs_with_10db;
                    break;
                }
            }
        }
    }
    const double frac_10db =
        static_cast<double>(pairs_with_10db) /
        static_cast<double>(total_pairs);

    os << "\n=== Figure 6 (right): CCDF of min-subcarrier SNR per "
          "configuration, one trace per trial ===\n\n";
    double frac_below_20 = 0.0;
    for (int t = 0; t < kTrials; ++t) {
        const std::vector<double>& mins =
            sweep.min_snr_per_trial_db[static_cast<std::size_t>(t)];
        core::print_ccdf(os, "fig6-right-rep" + std::to_string(t), mins, 20);
        frac_below_20 += util::fraction_below(mins, 20.0) / kTrials;
    }

    os << "\nPaper: ~38% of configuration changes cause a >=10 dB SNR change "
          "on at least one subcarrier; <9% of configurations have a worst "
          "subcarrier below 20 dB.\n";
    os << "Ours:  " << core::fmt(100.0 * frac_10db, 1)
       << "% of pairs cause a >=10 dB change on some subcarrier; "
       << core::fmt(100.0 * frac_below_20, 1)
       << "% of configurations have min SNR below 20 dB.\n\n";
}

void BM_MinSnrChangeAnalysis(benchmark::State& state) {
    using namespace press;
    core::LinkScenario scenario =
        core::make_link_scenario(kPlacementSeed, false);
    util::Rng rng(7000);
    core::ConfigSweep sweep = core::sweep_configurations(scenario, 2, rng);
    for (auto _ : state) {
        auto changes = core::min_snr_changes(sweep);
        benchmark::DoNotOptimize(changes.data());
    }
}
BENCHMARK(BM_MinSnrChangeAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // Telemetry accumulated by the figure reproduction and the timing
    // section above (trace counts, cache activity, search convergence);
    // no-op when PRESS_TELEMETRY is off.
    const press::obs::RunManifest manifest =
        press::obs::RunManifest::capture("fig6_min_snr", kPlacementSeed);
    const press::obs::RunExportPaths paths =
        press::obs::write_run_exports("fig6_min_snr", manifest);
    if (paths.telemetry) std::cout << "wrote " << *paths.telemetry << "\n";
    if (paths.trace) std::cout << "wrote " << *paths.trace << "\n";
    return 0;
}
